"""Unit tests for the interactive reasoning shell."""

import io

import pytest

from repro.shell import ReasoningShell, run_shell

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"


def drive(*lines):
    output = io.StringIO()
    run_shell(lines, output)
    return output.getvalue()


class TestSessionFlow:
    def test_full_session(self):
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            "sigma",
            "implies Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            "closure Pubcrawl(Person)",
            "basis Pubcrawl(Person)",
            "keys",
            "check4nf",
            "decompose",
            "quit",
        )
        assert "schema set (|N| = 4)" in out
        assert "Σ now has 1 dependency" in out
        assert "implied" in out
        assert "Pubcrawl(Person, Visit[λ])" in out
        assert "Pubcrawl(Visit[Drink(Beer)])" in out
        assert "NOT in 4NF" in out
        assert "components:" in out

    def test_add_and_drop(self):
        out = drive(
            "schema R(A, B, C)",
            "add R(A) -> R(B)",
            "add R(B) -> R(C)",
            "sigma",
            "drop 0",
            "sigma",
            "implies R(A) -> R(C)",
        )
        assert "Σ now has 2 dependencies" in out
        assert "dropped R(A) -> R(B)" in out
        assert out.count("[0]") == 2  # listed before and after the drop
        assert "not implied" in out

    def test_trace_and_cover(self):
        out = drive(
            "schema R(A, B, C)",
            "add R(A) -> R(B)",
            "add R(B) -> R(C)",
            "add R(A) -> R(C)",
            "cover",
            "trace R(A)",
        )
        assert out.count("->") >= 2
        assert "Initialisation:" in out

    def test_schema_reset_clears_sigma(self):
        out = drive(
            "schema R(A, B)",
            "add R(A) -> R(B)",
            "schema S(A, B)",
            "sigma",
        )
        assert "(Σ is empty)" in out


class TestStats:
    def test_stats_after_queries(self):
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            "implies Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            "implies Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
            "stats",
            "quit",
        )
        assert "reasoner: computed=1 hits=1" in out
        assert "kernel:   runs=1" in out
        assert "encoding:" in out

    def test_stats_listed_in_help(self):
        assert "stats" in drive("help", "quit")

    def test_stats_requires_schema(self):
        assert "no schema set" in drive("stats", "quit")


class TestRobustness:
    def test_commands_before_schema(self):
        out = drive("implies x -> y", "sigma", "keys")
        assert out.count("no schema set") == 3

    def test_parse_errors_are_messages_not_crashes(self):
        out = drive("schema R(A, B)", "add garbage", "implies also garbage")
        assert out.count("error:") == 2

    def test_unknown_command(self):
        out = drive("schema R(A, B)", "frobnicate")
        assert "unknown command 'frobnicate'" in out

    def test_unknown_command_without_schema_asks_for_one(self):
        # Before a schema exists, anything non-global prompts for one.
        out = drive("frobnicate")
        assert "no schema set" in out

    def test_blank_lines_and_comments_ignored(self):
        out = drive("", "   ", "# a comment", "quit")
        assert "error" not in out

    def test_drop_out_of_range(self):
        out = drive("schema R(A, B)", "drop 7")
        assert "no dependency #7" in out

    def test_help_and_exit(self):
        out = drive("help", "exit")
        assert "commands:" in out

    def test_handle_returns_false_on_quit(self):
        shell = ReasoningShell(io.StringIO())
        assert shell.handle("help")
        assert not shell.handle("quit")


class TestDesignCommands:
    def test_witness(self):
        out = drive(
            "schema R(A, B, C)",
            "add R(A) ->> R(B)",
            "witness R(A)",
        )
        assert "tuples over" in out
        assert "{" in out

    def test_synthesize(self):
        out = drive(
            "schema R(A, B, C)",
            "add R(A) -> R(B)",
            "synthesize",
        )
        assert "synthesized components:" in out
        assert "(key)" in out

    def test_drop_with_garbage_argument(self):
        out = drive("schema R(A, B)", "drop nonsense")
        assert "no dependency #nonsense" in out


class TestTracing:
    def test_trace_on_off_cycle(self):
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            "trace on",
            "implies Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            "trace off",
        )
        assert "tracing on" in out
        assert "spans recorded)" in out
        # the query between on/off produced at least the reasoner.query
        # and closure.compute spans
        import re

        match = re.search(r"tracing off \((\d+) spans recorded\)", out)
        assert match and int(match.group(1)) >= 2

    def test_trace_on_streams_jsonl(self, tmp_path):
        from repro.obs import validate_trace

        path = tmp_path / "session.jsonl"
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            f"trace on {path}",
            "closure Pubcrawl(Person)",
            "trace off",
        )
        assert f"streaming to {path}" in out
        counts = validate_trace(str(path))
        assert counts["spans"] >= 1
        assert counts["metrics"] == 1

    def test_metrics_command(self):
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            "trace on",
            "closure Pubcrawl(Person)",
            "metrics",
            "trace off",
        )
        assert "closure.runs = 1" in out

    def test_metrics_before_trace_on(self):
        out = drive("metrics")
        assert "observability is off" in out

    def test_double_on_and_stray_off(self):
        out = drive("trace on", "trace on", "trace off", "trace off")
        assert "tracing is already on" in out
        assert "tracing is not on" in out

    def test_quit_cleans_up_active_trace(self):
        from repro.obs import get_observer

        out = drive(f"schema {SCHEMA}", "trace on", "quit")
        assert "tracing off" in out  # close() reported on session end
        assert get_observer().enabled is False

    def test_trace_replay_command_still_works(self):
        # "trace <X>" (Algorithm 5.1 replay) must not be shadowed by
        # the "trace on/off" toggles
        out = drive(f"schema {SCHEMA}", f"add {MVD}",
                    "trace Pubcrawl(Person)")
        assert "pass" in out.lower() or "X" in out


class TestIncrementalEditing:
    def test_retract_by_text(self):
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            "closure Pubcrawl(Person)",
            f"retract {MVD}",
            "sigma",
        )
        assert "retracted Pubcrawl(Person) ->>" in out
        assert "evicted 1 cached closures" in out
        assert "(Σ is empty)" in out

    def test_retract_non_member_reports_error(self):
        out = drive(
            f"schema {SCHEMA}",
            f"retract {MVD}",
        )
        assert "error: the dependency" in out
        assert "not a member of Σ" in out

    def test_drop_still_works_and_shares_the_session(self):
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            "drop 0",
            "sigma",
        )
        assert "dropped Pubcrawl(Person) ->>" in out
        assert "(Σ is empty)" in out

    def test_add_after_query_warm_starts(self):
        out = drive(
            f"schema {SCHEMA}",
            f"add {MVD}",
            "closure Pubcrawl(Person)",
            "add Pubcrawl(Visit[λ]) -> Pubcrawl(Person)",
            "closure Pubcrawl(Person)",
            "stats",
        )
        assert "warm_starts=1" in out

    def test_engine_show_and_switch(self):
        out = drive(
            "engine",
            "engine reference",
            f"schema {SCHEMA}",
            f"add {MVD}",
            "implies Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            "engine worklist",
            "stats",
        )
        assert "engine: worklist (available:" in out
        assert "engine set to reference" in out
        assert "implied" in out
        assert "engine=worklist" in out

    def test_engine_preference_survives_schema_reset(self):
        out = drive(
            "engine naive",
            f"schema {SCHEMA}",
            "stats",
        )
        assert "engine=naive" in out

    def test_unknown_engine_reports_error(self):
        out = drive("engine quantum")
        assert "error: unknown kernel 'quantum'" in out

    def test_help_mentions_new_commands(self):
        out = drive("help")
        assert "retract <dep>" in out
        assert "engine [name]" in out
