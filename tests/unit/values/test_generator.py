"""Unit tests for the seeded value generator."""

import random

import pytest

from repro.attributes import EnumeratedDomain, Universe, parse_attribute as p
from repro.values import OK, ValueGenerator, is_valid_value


class TestValueGenerator:
    def test_values_are_valid(self, small_roots):
        generator = ValueGenerator(random.Random(7))
        for root in small_roots:
            for value in generator.values(root, 20):
                assert is_valid_value(root, value)

    def test_deterministic_under_seed(self):
        root = p("R(A, L[D(B, C)])")
        first = list(ValueGenerator(random.Random(3)).values(root, 10))
        second = list(ValueGenerator(random.Random(3)).values(root, 10))
        assert first == second

    def test_null_value(self):
        assert ValueGenerator().value(p("λ")) == OK

    def test_list_lengths_bounded(self):
        generator = ValueGenerator(random.Random(1), max_list_length=2)
        root = p("L[A]")
        assert all(len(generator.value(root)) <= 2 for _ in range(50))

    def test_zero_max_list_length_gives_empty_lists(self):
        generator = ValueGenerator(random.Random(1), max_list_length=0)
        assert generator.value(p("L[A]")) == ()

    def test_negative_max_list_length_rejected(self):
        with pytest.raises(ValueError):
            ValueGenerator(max_list_length=-1)

    def test_universe_domains_respected(self):
        universe = Universe({"Beer": EnumeratedDomain(["Lübzer", "Kindl"])})
        generator = ValueGenerator(random.Random(0), universe)
        assert all(
            generator.value(p("Beer")) in {"Lübzer", "Kindl"} for _ in range(20)
        )

    def test_instance_size_bounded(self):
        generator = ValueGenerator(random.Random(5))
        instance = generator.instance(p("R(A, B)"), 6)
        assert len(instance) <= 6
        assert isinstance(instance, frozenset)

    def test_collision_friendliness(self):
        # Small default domains should actually produce agreeing tuples.
        generator = ValueGenerator(random.Random(11))
        values = list(generator.values(p("A"), 50))
        assert len(set(values)) < 50
