"""Unit tests for the value model ``dom(N)`` (Definition 3.3)."""

import pytest

from repro.attributes import EnumeratedDomain, Universe, parse_attribute as p
from repro.exceptions import InvalidValueError
from repro.values import (
    OK,
    Ok,
    format_instance,
    format_value,
    is_valid_value,
    validate_instance,
    validate_value,
)


class TestOk:
    def test_singleton(self):
        assert Ok() is OK

    def test_equality_and_hash(self):
        assert OK == Ok()
        assert hash(OK) == hash(Ok())
        assert OK != 0

    def test_repr(self):
        assert repr(OK) == "ok"


class TestValidation:
    def test_null_accepts_only_ok(self):
        validate_value(p("λ"), OK)
        with pytest.raises(InvalidValueError):
            validate_value(p("λ"), 1)

    def test_flat_accepts_hashable_constants(self):
        validate_value(p("A"), 7)
        validate_value(p("A"), "Sven")
        with pytest.raises(InvalidValueError):
            validate_value(p("A"), [1, 2])  # unhashable
        with pytest.raises(InvalidValueError):
            validate_value(p("A"), (1, 2))  # structured values are not flat
        with pytest.raises(InvalidValueError):
            validate_value(p("A"), OK)

    def test_record_arity_checked(self):
        root = p("R(A, B)")
        validate_value(root, (1, 2))
        with pytest.raises(InvalidValueError):
            validate_value(root, (1,))
        with pytest.raises(InvalidValueError):
            validate_value(root, 1)

    def test_list_values_are_tuples(self):
        root = p("L[A]")
        validate_value(root, ())
        validate_value(root, (1, 2, 3))
        with pytest.raises(InvalidValueError):
            validate_value(root, [1, 2])
        with pytest.raises(InvalidValueError):
            validate_value(root, ((1, 2),))  # element must be flat

    def test_nested_structure(self):
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        validate_value(root, ("Sven", (("Lübzer", "Deanos"),)))
        validate_value(root, ("Sebastian", ()))  # empty list is fine
        with pytest.raises(InvalidValueError):
            validate_value(root, ("Sven", (("Lübzer",),)))  # inner arity

    def test_universe_membership_enforced(self):
        universe = Universe({"Beer": EnumeratedDomain(["Lübzer"])})
        validate_value(p("Beer"), "Lübzer", universe)
        with pytest.raises(InvalidValueError):
            validate_value(p("Beer"), "Coke", universe)

    def test_is_valid_value(self):
        assert is_valid_value(p("L[A]"), (1,))
        assert not is_valid_value(p("L[A]"), 1)

    def test_validate_instance(self):
        root = p("R(A, B)")
        checked = validate_instance(root, [(1, 2), (1, 2), (3, 4)])
        assert checked == frozenset({(1, 2), (3, 4)})
        with pytest.raises(InvalidValueError):
            validate_instance(root, [(1,)])


class TestFormatting:
    def test_format_value_paper_notation(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        value = ("Sven", (("Lübzer", "Deanos"), ("Kindl", "Highflyers")))
        assert format_value(root, value) == (
            "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])"
        )

    def test_format_ok(self):
        assert format_value(p("λ"), OK) == "ok"

    def test_format_empty_list(self):
        assert format_value(p("L[A]"), ()) == "[]"

    def test_format_instance_sorted_and_braced(self):
        root = p("R(A, B)")
        text = format_instance(root, {(2, 2), (1, 1)})
        assert text.index("(1, 1)") < text.index("(2, 2)")
        assert text.startswith("{") and text.endswith("}")

    def test_format_empty_instance(self):
        assert format_instance(p("A"), []) == "{}"
