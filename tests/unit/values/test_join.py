"""Unit tests for amalgamation and the generalised join (Theorem 4.4)."""

import pytest

from repro.attributes import parse_attribute as p, parse_subattribute
from repro.exceptions import IncompatibleValuesError, NotAnElementError
from repro.values import (
    OK,
    amalgamate,
    compatible,
    generalised_join,
    generalized_join,
    project,
    project_instance,
)


def s(text, root):
    return parse_subattribute(text, root)


class TestCompatible:
    def test_record_components_disjoint_always_compatible(self):
        root = p("R(A, B)")
        assert compatible(root, s("R(A)", root), s("R(B)", root), (1, OK), (OK, 2))

    def test_lists_with_different_lengths_incompatible(self):
        root = p("L[R(A, B)]")
        left_attr = s("L[R(A)]", root)
        right_attr = s("L[R(B)]", root)
        left = ((1, OK),)
        right = ((OK, 2), (OK, 3))
        assert not compatible(root, left_attr, right_attr, left, right)

    def test_overlapping_attributes_must_agree(self):
        root = p("R(A, B, C)")
        left_attr = s("R(A, B)", root)
        right_attr = s("R(B, C)", root)
        assert compatible(root, left_attr, right_attr, (1, 2, OK), (OK, 2, 3))
        assert not compatible(root, left_attr, right_attr, (1, 2, OK), (OK, 9, 3))


class TestAmalgamate:
    def test_record(self):
        root = p("R(A, B)")
        combined = amalgamate(root, s("R(A)", root), s("R(B)", root), (1, OK), (OK, 2))
        assert combined == (1, 2)

    def test_list_pointwise(self):
        root = p("L[R(A, B)]")
        combined = amalgamate(
            root,
            s("L[R(A)]", root),
            s("L[R(B)]", root),
            ((1, OK), (2, OK)),
            ((OK, "x"), (OK, "y")),
        )
        assert combined == ((1, "x"), (2, "y"))

    def test_subsumed_side_returns_other(self):
        root = p("R(A, B)")
        full = (1, 2)
        assert amalgamate(root, root, s("R(A)", root), full, (1, OK)) == full

    def test_incompatible_raises(self):
        root = p("R(A, B, C)")
        with pytest.raises(IncompatibleValuesError):
            amalgamate(
                root, s("R(A, B)", root), s("R(B, C)", root), (1, 2, OK), (OK, 9, 3)
            )

    def test_foreign_attribute_raises(self):
        with pytest.raises(NotAnElementError):
            amalgamate(p("R(A, B)"), p("A"), p("R(B)"), 1, (OK, 2))

    def test_projections_of_amalgam_recover_parts(self):
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        left_attr = s("Pubcrawl(Person, Visit[Drink(Beer)])", root)
        right_attr = s("Pubcrawl(Person, Visit[Drink(Pub)])", root)
        left = ("Sven", (("Lübzer", OK),))
        right = ("Sven", ((OK, "Deanos"),))
        combined = amalgamate(root, left_attr, right_attr, left, right)
        assert project(root, left_attr, combined) == left
        assert project(root, right_attr, combined) == right


class TestGeneralisedJoin:
    def test_paper_remark_after_theorem_4_4(self):
        # N = L(A, B), r = {(a, b1), (a, b2)}: r equals {a} ⋈ {b1, b2}
        # even though L(A) → L(B) fails.
        root = p("L(A, B)")
        a_side = s("L(A)", root)
        b_side = s("L(B)", root)
        r1 = {("a", OK)}
        r2 = {(OK, "b1"), (OK, "b2")}
        joined = generalised_join(root, a_side, b_side, r1, r2)
        assert joined == frozenset({("a", "b1"), ("a", "b2")})

    def test_join_filters_incompatible_pairs(self):
        root = p("L[A]")
        length = s("L[λ]", root)
        joined = generalised_join(root, root, length, {(1,)}, {(OK, OK)})
        assert joined == frozenset()  # lengths 1 vs 2 cannot combine

    def test_join_of_projections_contains_instance(self, pubcrawl_scenario):
        # r ⊆ π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r) always holds.
        root = pubcrawl_scenario.root
        left_attr = s("Pubcrawl(Person, Visit[Drink(Beer)])", root)
        right_attr = s("Pubcrawl(Person, Visit[Drink(Pub)])", root)
        r = pubcrawl_scenario.instance
        joined = generalised_join(
            root,
            left_attr,
            right_attr,
            project_instance(root, left_attr, r),
            project_instance(root, right_attr, r),
        )
        assert r <= joined

    def test_alias(self):
        assert generalized_join is generalised_join
