"""Unit tests for projection functions ``π^N_M`` (Definition 3.6)."""

import pytest

from repro.attributes import (
    bottom,
    is_subattribute,
    parse_attribute as p,
    parse_subattribute,
    subattributes,
)
from repro.exceptions import NotASubattributeError
from repro.values import OK, ValueGenerator, agreement_holds, project, project_instance


def s(text, root):
    return parse_subattribute(text, root)


class TestBaseCases:
    def test_identity(self):
        root = p("R(A, B)")
        assert project(root, root, (1, 2)) == (1, 2)

    def test_constant_ok(self):
        assert project(p("A"), p("λ"), 42) == OK
        assert project(p("L[A]"), p("λ"), (1, 2)) == OK

    def test_rejects_non_subattribute(self):
        with pytest.raises(NotASubattributeError):
            project(p("A"), p("B"), 1)


class TestRecordProjection:
    def test_componentwise(self):
        root = p("R(A, B)")
        assert project(root, s("R(A)", root), (1, 2)) == (1, OK)
        assert project(root, s("R(B)", root), (1, 2)) == (OK, 2)

    def test_bottom_projection(self):
        root = p("R(A, B)")
        assert project(root, bottom(root), (1, 2)) == (OK, OK)


class TestListProjection:
    def test_preserves_order_and_length(self):
        root = p("Visit[Drink(Beer, Pub)]")
        value = (("Lübzer", "Deanos"), ("Kindl", "Highflyers"))
        projected = project(root, s("Visit[Drink(Pub)]", root), value)
        assert projected == ((OK, "Deanos"), (OK, "Highflyers"))

    def test_projection_to_bare_length(self):
        # π onto L[λ] keeps exactly the length — the paper's key point.
        root = p("L[A]")
        assert project(root, s("L[λ]", root), (7, 8, 9)) == (OK, OK, OK)
        assert project(root, s("L[λ]", root), ()) == ()

    def test_lists_of_different_lengths_never_agree_above_bottom(self):
        root = p("L[A]")
        length_attr = s("L[λ]", root)
        assert not agreement_holds(root, length_attr, (1,), (1, 2))


class TestCompositionLaw:
    def test_projection_composes(self, small_roots):
        # π^M_K ∘ π^N_M = π^N_K for K ≤ M ≤ N.
        generator = ValueGenerator()
        for root in small_roots:
            elements = list(subattributes(root))
            values = [generator.value(root) for _ in range(3)]
            for middle in elements:
                for target in elements:
                    if not is_subattribute(target, middle):
                        continue
                    for value in values:
                        via_middle = project(
                            middle, target, project(root, middle, value)
                        )
                        direct = project(root, target, value)
                        assert via_middle == direct


class TestInstanceProjection:
    def test_deduplicates(self):
        root = p("R(A, B)")
        instance = {(1, 1), (1, 2)}
        projected = project_instance(root, s("R(A)", root), instance)
        assert projected == frozenset({(1, OK)})

    def test_empty_instance(self):
        root = p("R(A, B)")
        assert project_instance(root, s("R(A)", root), set()) == frozenset()

    def test_pubcrawl_projection_from_example_4_5(self, pubcrawl_scenario):
        # The beers-only projection of the paper's Example 4.5.
        root = pubcrawl_scenario.root
        beers = s("Pubcrawl(Person, Visit[Drink(Beer)])", root)
        projected = project_instance(root, beers, pubcrawl_scenario.instance)
        expected = frozenset(
            {
                ("Sven", (("Lübzer", OK), ("Kindl", OK))),
                ("Sven", (("Kindl", OK), ("Lübzer", OK))),
                ("Klaus-Dieter", (("Guiness", OK), ("Speights", OK), ("Guiness", OK))),
                ("Klaus-Dieter", (("Kölsch", OK), ("Bönnsch", OK), ("Guiness", OK))),
                ("Sebastian", ()),
            }
        )
        assert projected == expected
