"""Unit tests for the membership API (Proposition 4.10 applications)."""

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute
from repro.core import (
    analyse,
    closure,
    dependency_basis,
    equivalent,
    implies,
    implies_every,
    is_redundant,
    minimal_cover,
)
from repro.dependencies import DependencySet, parse_dependency


def s(text, root):
    return parse_subattribute(text, root)


@pytest.fixture()
def root():
    return p("R(A, B, C)")


@pytest.fixture()
def sigma(root):
    return DependencySet.parse(root, ["R(A) -> R(B)", "R(B) -> R(C)"])


class TestImplies:
    def test_fd_membership(self, root, sigma):
        assert implies(sigma, parse_dependency("R(A) -> R(C)", root))
        assert not implies(sigma, parse_dependency("R(C) -> R(A)", root))

    def test_mvd_membership(self, root, sigma):
        assert implies(sigma, parse_dependency("R(A) ->> R(B)", root))
        assert implies(sigma, parse_dependency("R(A) ->> R(B, C)", root))

    def test_trivial_dependencies_always_implied(self, root):
        empty = DependencySet(root)
        assert implies(empty, parse_dependency("R(A, B) -> R(A)", root))
        assert implies(empty, parse_dependency("R(A) ->> R(A, B, C)", root))
        assert implies(empty, parse_dependency("R(A) ->> λ", root))

    def test_rejects_foreign_dependency(self, sigma):
        other_root = p("S(A, B)")
        foreign = parse_dependency("S(A) -> S(B)", other_root)
        with pytest.raises(Exception):
            implies(sigma, foreign)

    def test_encoding_reuse(self, root, sigma):
        enc = BasisEncoding(root)
        assert implies(sigma, parse_dependency("R(A) -> R(C)", root), encoding=enc)

    def test_encoding_root_mismatch_rejected(self, sigma):
        wrong = BasisEncoding(p("S(A, B)"))
        with pytest.raises(ValueError):
            implies(sigma, parse_dependency("R(A) -> R(B)", sigma.root), encoding=wrong)


class TestClosureAndBasis:
    def test_closure_function(self, root, sigma):
        assert closure(sigma, s("R(A)", root)) == root

    def test_dependency_basis_function(self, root, sigma):
        basis = dependency_basis(sigma, s("R(A)", root))
        assert set(basis) == {s("R(A)", root), s("R(B)", root), s("R(C)", root)}

    def test_analyse_reuse(self, root, sigma):
        result = analyse(sigma, s("R(A)", root))
        enc = result.encoding
        assert result.implies_fd_rhs(enc.encode(s("R(C)", root)))


class TestImpliesEvery:
    def test_groups_by_lhs(self, root, sigma):
        targets = [
            parse_dependency("R(A) -> R(B)", root),
            parse_dependency("R(A) -> R(C)", root),
            parse_dependency("R(A) ->> R(B, C)", root),
        ]
        assert implies_every(sigma, targets)

    def test_any_failure_fails(self, root, sigma):
        targets = [
            parse_dependency("R(A) -> R(B)", root),
            parse_dependency("R(C) -> R(A)", root),
        ]
        assert not implies_every(sigma, targets)

    def test_empty_targets(self, sigma):
        assert implies_every(sigma, [])

    def test_implies_all_alias_warns_and_agrees(self, root, sigma):
        from repro.core.membership import implies_all

        targets = [parse_dependency("R(A) -> R(C)", root)]
        with pytest.warns(DeprecationWarning, match="implies_every"):
            assert implies_all(sigma, targets) == implies_every(sigma, targets)

    def test_alias_warning_disambiguates_both_surfaces(self, root, sigma):
        """The message must steer readers to *both* replacements: the
        conjunction (implies_every) and the per-query batch API."""
        from repro.core.membership import implies_all

        targets = [parse_dependency("R(A) -> R(C)", root)]
        with pytest.warns(DeprecationWarning) as caught:
            implies_all(sigma, targets)
        message = str(caught[0].message)
        assert "implies_every" in message
        assert "repro.batch.implies_all" in message

    def test_batch_implies_all_does_not_warn(self, root, sigma):
        """Only the membership alias is deprecated — the batch facade of
        the same name is the blessed per-query API and stays silent."""
        import warnings as _warnings

        from repro.batch import implies_all as batch_implies_all
        from repro.schema import Schema

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            verdicts = batch_implies_all(
                Schema(root), [str(d.display(root)) for d in sigma],
                ["R(A) -> R(C)"])
        assert verdicts == [True]


class TestEquivalence:
    def test_reformulated_sets_equivalent(self, root):
        first = DependencySet.parse(root, ["R(A) -> R(B, C)"])
        second = DependencySet.parse(root, ["R(A) -> R(B)", "R(A) -> R(C)"])
        assert equivalent(first, second)

    def test_mvd_and_complement_equivalent(self, root):
        first = DependencySet.parse(root, ["R(A) ->> R(B)"])
        second = DependencySet.parse(root, ["R(A) ->> R(C)"])
        assert equivalent(first, second)

    def test_inequivalent_sets(self, root):
        first = DependencySet.parse(root, ["R(A) -> R(B)"])
        second = DependencySet.parse(root, ["R(B) -> R(A)"])
        assert not equivalent(first, second)

    def test_different_roots_never_equivalent(self, root):
        first = DependencySet(root)
        second = DependencySet(p("S(A, B)"))
        assert not equivalent(first, second)


class TestRedundancyAndCover:
    def test_is_redundant(self, root):
        sigma = DependencySet.parse(
            root, ["R(A) -> R(B)", "R(B) -> R(C)", "R(A) -> R(C)"]
        )
        assert is_redundant(sigma, parse_dependency("R(A) -> R(C)", root))
        assert not is_redundant(sigma, parse_dependency("R(A) -> R(B)", root))

    def test_is_redundant_requires_membership(self, sigma, root):
        with pytest.raises(ValueError):
            is_redundant(sigma, parse_dependency("R(C) -> R(B)", root))

    def test_minimal_cover_drops_derived(self, root):
        sigma = DependencySet.parse(
            root, ["R(A) -> R(B)", "R(B) -> R(C)", "R(A) -> R(C)"]
        )
        cover = minimal_cover(sigma)
        assert len(cover) == 2
        assert equivalent(cover, sigma)

    def test_minimal_cover_of_irredundant_set_is_identity(self, sigma):
        assert set(minimal_cover(sigma)) == set(sigma)

    def test_minimal_cover_with_mvds(self, root):
        sigma = DependencySet.parse(
            root, ["R(A) ->> R(B)", "R(A) ->> R(C)"]  # complements of each other
        )
        cover = minimal_cover(sigma)
        assert len(cover) == 1
        assert equivalent(cover, sigma)
