"""Unit tests for the structural reference implementation of Algorithm 5.1."""

from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute
from repro.core import compute_closure, reference_closure, reference_dependency_basis
from repro.dependencies import DependencySet


def s(text, root):
    return parse_subattribute(text, root)


class TestAgreementWithFastImplementation:
    def test_example_5_1(self, example51, example51_encoding):
        fast = compute_closure(example51_encoding, example51.x(), example51.sigma)
        ref_closure, ref_db = reference_closure(
            example51.root, example51.x(), example51.sigma
        )
        assert ref_closure == fast.closure
        assert ref_db == frozenset(
            example51_encoding.decode(mask) for mask in fast.blocks
        )

    def test_reference_dependency_basis(self, example51, example51_encoding):
        fast = compute_closure(example51_encoding, example51.x(), example51.sigma)
        ref = reference_dependency_basis(example51.root, example51.x(), example51.sigma)
        assert ref == frozenset(fast.dependency_basis())

    def test_pubcrawl(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        sigma = pubcrawl_scenario.sigma()
        x = s("Pubcrawl(Person)", root)
        enc = BasisEncoding(root)
        fast = compute_closure(enc, x, sigma)
        ref_closure, ref_db = reference_closure(root, x, sigma)
        assert ref_closure == fast.closure
        assert ref_db == frozenset(enc.decode(mask) for mask in fast.blocks)

    def test_empty_sigma(self):
        root = p("R(A, L[B])")
        enc = BasisEncoding(root)
        sigma = DependencySet(root)
        x = s("R(A)", root)
        fast = compute_closure(enc, x, sigma)
        ref_closure, ref_db = reference_closure(root, x, sigma)
        assert ref_closure == fast.closure == x
        assert ref_db == frozenset(enc.decode(mask) for mask in fast.blocks)

    def test_fd_only_chain(self):
        root = p("R(A, B, C)")
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(root, ["R(A) -> R(B)", "R(B) -> R(C)"])
        x = s("R(A)", root)
        fast = compute_closure(enc, x, sigma)
        ref_closure, _ = reference_closure(root, x, sigma)
        assert ref_closure == fast.closure == root
