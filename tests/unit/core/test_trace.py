"""Unit tests for the Algorithm 5.1 trace recorder (Figures 3/4 support)."""

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute
from repro.core import TraceRecorder, compute_closure
from repro.dependencies import DependencySet


@pytest.fixture()
def traced_run(example51, example51_encoding):
    recorder = TraceRecorder()
    result = compute_closure(
        example51_encoding, example51.x(), example51.sigma, trace=recorder
    )
    return recorder, result


class TestRecording:
    def test_initial_state_recorded(self, traced_run, example51_encoding):
        recorder, result = traced_run
        assert recorder.encoding is example51_encoding
        assert recorder.initial_x == result.x_mask
        assert len(recorder.initial_db) == 3  # Figure 3: three boxes

    def test_final_state_matches_result(self, traced_run):
        recorder, result = traced_run
        assert recorder.final_x == result.closure_mask
        assert recorder.final_db == result.blocks

    def test_steps_per_pass(self, traced_run, example51):
        recorder, result = traced_run
        per_pass = len(list(example51.sigma))
        assert len(recorder.steps) == per_pass * result.passes
        assert recorder.passes == result.passes

    def test_fd_steps_precede_mvd_steps_within_pass(self, traced_run):
        recorder, _ = traced_run
        first_pass = [step for step in recorder.steps if step.pass_number == 1]
        kinds = [step.is_fd for step in first_pass]
        assert kinds == sorted(kinds, reverse=True)  # True(s) first

    def test_changed_steps_subset(self, traced_run):
        recorder, _ = traced_run
        changed = recorder.states_after_each_change()
        assert changed
        assert all(step.changed for step in changed)
        # Example 5.1: exactly three state-changing applications.
        assert len(changed) == 3

    def test_state_after_lookup(self, traced_run, example51):
        recorder, _ = traced_run
        fd = example51.sigma.fds()[0]
        step = recorder.state_after(2, fd)
        assert step.pass_number == 2
        with pytest.raises(KeyError):
            recorder.state_after(99, fd)


class TestRendering:
    def test_render_contains_paper_sections(self, traced_run):
        recorder, _ = traced_run
        text = recorder.render()
        assert "Initialisation:" in text
        assert "Pass 1 through the REPEAT UNTIL loop:" in text
        assert "Final state:" in text
        assert "no changes" in text

    def test_render_uses_abbreviated_notation(self, traced_run):
        recorder, _ = traced_run
        assert "L1(L7(F))" in recorder.render()

    def test_empty_trace_renders(self):
        assert TraceRecorder().render() == "(empty trace)"

    def test_unlabelled_steps_render(self):
        # Mask-level runs pass no dependency labels.
        root = p("R(A, B)")
        enc = BasisEncoding(root)
        from repro.core.closure import closure_of_masks

        recorder = TraceRecorder()
        x = enc.encode(parse_subattribute("R(A)", root))
        v = enc.encode(parse_subattribute("R(B)", root))
        closure_of_masks(enc, x, [(x, v)], [], trace=recorder)
        text = recorder.render()
        assert "dependency" in text
