"""The typed command registry: specs, validation, executor, completeness.

The completeness guard is the point of this module: every surface
(wire protocol, server, clients, CLI, shell, docs) is *derived* from
``repro.core.commands.REGISTRY``, and these tests fail the build the
moment any of them could drift — a wire op without a server handler, a
client without a wrapper, a docs table that was hand-edited.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.core import commands
from repro.core.commands import (
    Command,
    CommandContext,
    CommandParamError,
    Deadline,
    DeadlineExceeded,
    REGISTRY,
)
from repro.core.session import Session
from repro.schema import Schema

DOCS = Path(__file__).resolve().parents[3] / "docs" / "SERVER.md"


def make_session() -> Session:
    schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    session = Session(schema.root, encoding=schema.encoding)
    session.add(schema.dependency(
        "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"))
    return session


# -- completeness: the registry is the single source of truth --------------


class TestCompleteness:
    def test_protocol_ops_is_exactly_the_wire_set(self):
        from repro.serve import protocol

        assert protocol.OPS == commands.wire_ops()

    def test_every_wire_op_is_registered_and_vice_versa(self):
        wire = commands.wire_ops()
        for name, cls in REGISTRY.items():
            assert (name in wire) == cls.spec.wire
        assert "trace" not in wire  # local-only stays off the wire

    def test_at_least_four_newly_exposed_wire_ops(self):
        assert {"cover", "keys", "check4nf",
                "is_redundant"} <= commands.wire_ops()

    def test_every_server_scope_op_has_a_server_handler(self):
        from repro.serve.server import ReasoningServer

        for name, cls in REGISTRY.items():
            if cls.spec.wire and cls.spec.scope == "server":
                # dotted wire names map to underscored method names
                method = f"_op_{name.replace('.', '_')}"
                assert hasattr(ReasoningServer, method), name

    def test_server_binds_all_admin_handlers(self):
        from repro.serve.server import ReasoningServer

        server = ReasoningServer()
        expected = {name for name, cls in REGISTRY.items()
                    if cls.spec.wire and cls.spec.scope == "server"}
        assert set(server._admin_handlers) == expected

    def test_every_session_scope_command_has_a_run_handler(self):
        for name, cls in REGISTRY.items():
            if cls.spec.scope == "session":
                assert cls.run is not Command.run, name

    def test_every_wire_op_has_a_client_wrapper(self):
        from repro.serve.client import _OpsMixin

        wrapper_names = {"close": "close_session"}
        for name in commands.wire_ops():
            method = wrapper_names.get(name, name.replace(".", "_"))
            assert callable(getattr(_OpsMixin, method, None)), name

    def test_every_command_has_docs_and_classification(self):
        for name, cls in REGISTRY.items():
            spec = cls.spec
            assert spec.name == name
            assert spec.summary and spec.usage
            assert spec.cost in ("admin", "edit", "hot", "cold")
            assert spec.scope in ("session", "server")
            if spec.wire:
                assert spec.result, name

    def test_wire_params_all_have_dataclass_fields(self):
        for name, cls in REGISTRY.items():
            declared = {f.name for f in dataclasses.fields(cls)}
            for param in cls.spec.params:
                assert param.name in declared, (name, param.name)

    def test_docs_op_table_matches_the_registry(self):
        from repro.serve.__main__ import committed_table

        committed = committed_table(DOCS.read_text(encoding="utf-8"))
        assert committed is not None, "docs/SERVER.md lost its markers"
        assert committed == commands.op_table(), (
            "docs/SERVER.md op table is stale — regenerate with "
            "`python -m repro.serve --op-table`")

    def test_mutating_commands_are_not_read_only(self):
        for name in ("add", "retract", "open", "close"):
            assert not REGISTRY[name].spec.read_only, name
        for name in ("implies", "implies_batch", "closure", "basis",
                     "cover", "keys", "check4nf", "is_redundant"):
            assert REGISTRY[name].spec.read_only, name

    def test_registry_guard_rejects_duplicate_names(self):
        with pytest.raises(AssertionError, match="duplicate"):
            commands.register(REGISTRY["implies"])


# -- wire validation: exact historical messages ----------------------------


class TestFromWire:
    def test_unknown_and_non_wire_ops_raise_key_error(self):
        with pytest.raises(KeyError):
            commands.from_wire("no_such_op", {})
        with pytest.raises(KeyError):
            commands.from_wire("trace", {"session": "s", "x": "R(A)"})

    @pytest.mark.parametrize("op,params,message", [
        ("implies", {"dependency": "x"}, "'session' must be a string"),
        ("implies", {"session": "s"}, "'dependency' must be a string"),
        ("implies", {"session": "s", "dependency": 7},
         "'dependency' must be a string"),
        ("closure", {"session": "s"}, "'x' must be a string"),
        ("open", {"schema": "R(A)"}, "'name' must be a non-empty string"),
        ("open", {"name": ""}, "'name' must be a non-empty string"),
        ("open", {"name": "s"}, "'schema' must be a string"),
        ("open", {"name": "s", "schema": "R(A)", "dependencies": "nope"},
         "'dependencies' must be a list of strings"),
        ("open", {"name": "s", "schema": "R(A)", "engine": 3},
         "'engine' must be a string"),
        ("implies_batch", {"session": "s", "dependencies": [1]},
         "'dependencies' must be a list of strings"),
    ])
    def test_bad_params_messages_are_pinned(self, op, params, message):
        with pytest.raises(CommandParamError) as caught:
            commands.from_wire(op, params)
        assert str(caught.value) == message

    def test_optional_params_may_be_absent(self):
        opened = commands.from_wire("open", {"name": "s", "schema": "R(A)"})
        assert opened.dependencies == ()
        assert opened.engine is None
        assert opened.replace is False
        metrics = commands.from_wire("metrics", {})
        assert metrics.session is None


# -- retry derivation ------------------------------------------------------


class TestRetrySafe:
    def test_overloaded_is_always_resendable(self):
        for op in commands.wire_ops():
            assert commands.retry_safe(op, "overloaded")

    def test_timeout_resends_read_only_ops_only(self):
        assert commands.retry_safe("implies", "timeout")
        assert commands.retry_safe("cover", "timeout")
        assert not commands.retry_safe("add", "timeout")
        assert not commands.retry_safe("retract", "timeout")
        assert not commands.retry_safe("open", "timeout")

    def test_unknown_op_is_conservatively_mutating(self):
        assert not commands.retry_safe("no_such_op", "timeout")


# -- the executor ----------------------------------------------------------


class TestExecute:
    def test_implies_round_trip(self):
        session = make_session()
        outcome = commands.execute(
            commands.Implies(
                dependency="Pubcrawl(Person) -> Pubcrawl(Visit[λ])"),
            session)
        assert outcome.result == {"implied": True}
        assert outcome.value is True
        assert outcome.mutated is False

    def test_add_reports_mutation_only_when_added(self):
        session = make_session()
        dep = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
        first = commands.execute(commands.Add(dependency=dep), session)
        assert first.mutated and first.result["added"]
        again = commands.execute(commands.Add(dependency=dep), session)
        assert not again.mutated and not again.result["added"]

    def test_observer_records_span_and_counters(self):
        from repro.obs import InMemorySink, Observer, set_observer
        from repro.obs.validate import validate_records

        sink = InMemorySink()
        observer = Observer([sink])
        previous = set_observer(observer)
        try:
            session = make_session()
            commands.execute(commands.Closure(x="Pubcrawl(Person)"), session)
        finally:
            set_observer(previous)
            observer.close()
        spans = [s for s in sink.spans if s["name"] == "command.run"]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["command"] == "closure"
        assert attrs["cost"] == "cold"
        assert attrs["read_only"] is True
        assert attrs["ok"] is True
        counters = observer.metrics.snapshot()["counters"]
        assert counters["command.executed"] == 1
        assert counters["command.closure"] == 1
        assert observer.metrics.snapshot()["histograms"][
            "command.ms"]["count"] == 1
        validate_records(sink.spans)

    def test_errors_tick_the_error_counter_and_mark_the_span(self):
        from repro.obs import InMemorySink, Observer, set_observer

        sink = InMemorySink()
        observer = Observer([sink])
        previous = set_observer(observer)
        try:
            session = make_session()
            with pytest.raises(Exception):
                commands.execute(commands.Implies(dependency="not a dep"),
                                 session)
        finally:
            set_observer(previous)
            observer.close()
        spans = [s for s in sink.spans if s["name"] == "command.run"]
        assert len(spans) == 1
        assert "error" in spans[0]["attrs"]
        assert "ok" not in spans[0]["attrs"]
        counters = observer.metrics.snapshot()["counters"]
        assert counters["command.errors"] == 1
        assert "command.executed" not in counters

    def test_expired_deadline_stops_a_batch(self):
        session = make_session()
        command = commands.ImpliesBatch(dependencies=(
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",))
        ctx = CommandContext(session, Deadline(-1.0))
        with pytest.raises(DeadlineExceeded):
            command.run(ctx)

    def test_deadline_exceeded_is_a_timeout_error(self):
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(CommandParamError, ValueError)

    def test_read_only_analysis_leaves_the_session_untouched(self):
        session = make_session()
        before = tuple(session.dependencies)
        for cls in (commands.MinimalCover, commands.Keys,
                    commands.Check4NF):
            commands.execute(cls(), session)
        commands.execute(commands.IsRedundant(
            dependency="Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"),
            session)
        assert tuple(session.dependencies) == before

    def test_renderers_expose_exit_codes(self):
        lines, code = commands.Implies.render({"implied": False})
        assert lines == ["not implied"] and code == 1
        lines, code = commands.Check4NF.render(
            {"in_4nf": False, "violations": ["X ->> Y"]})
        assert lines == ["NOT in 4NF", "  violated by: X ->> Y"]
        assert code == 1
        lines, code = commands.MinimalCover.render({"cover": [], "sigma": 0})
        assert lines == ["(empty)"] and code == 0
