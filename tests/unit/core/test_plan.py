"""Unit tests for repro.core.plan (CompiledPlan + ClosureIntervalCache)."""

import pickle

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p
from repro.core import Session
from repro.core.engine import KernelStats, closure_of_masks_fast
from repro.core.engines import get_engine
from repro.core.plan import ClosureIntervalCache, CompiledPlan, compile_plan
from repro.dependencies import parse_dependency


@pytest.fixture()
def encoding():
    return BasisEncoding(p("R(A, B, C, L[M(D, E)])"))


def _masks(encoding, *texts):
    pairs = []
    for text in texts:
        dependency = parse_dependency(text, encoding.root)
        pairs.append((encoding.encode(dependency.lhs),
                      encoding.encode(dependency.rhs)))
    return pairs


class TestCompile:
    def test_folds_exact_duplicates_with_origin_remap(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(B) -> R(C)",
                          "R(A) -> R(B)")
        mvd_masks = _masks(encoding, "R(C) ->> R(L[M(D)])",
                           "R(C) ->> R(L[M(D)])")
        plan = compile_plan(encoding, fd_masks, mvd_masks)
        assert plan.sigma_size == 5
        assert len(plan) == 3                       # 2 distinct FDs + 1 MVD
        assert plan.fd_count == 2
        assert plan.fd_total == 3 and plan.mvd_total == 2
        # origin: folded position -> FIRST original FDs-then-MVDs index.
        assert plan.origin == (0, 1, 3)
        # folded_of: original index -> folded position (duplicates share).
        assert plan.folded_of == (0, 1, 0, 2, 2)

    def test_requeue_masks_invert_the_relevance_scan(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(B, C) -> R(A)")
        mvd_masks = _masks(encoding, "R(C) ->> R(L[M(D)])")
        plan = compile_plan(encoding, fd_masks, mvd_masks)
        assert len(plan.requeue_masks) == encoding.size
        for bit in range(encoding.size):
            expected = 0
            for position, (u, v, _is_fd) in enumerate(plan.deps):
                if (u | v) >> bit & 1:
                    expected |= 1 << position
            assert plan.requeue_masks[bit] == expected, bit

    def test_rhs_tilde_is_pseudo_difference_from_bottom(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(L[M(D, E)])")
        plan = compile_plan(encoding, fd_masks, [])
        (_, v, _), = plan.deps
        assert plan.rhs_tilde[0] == encoding.pseudo_difference(v, 0)

    def test_fd_and_mvd_constants_are_kind_specific(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B, C)")
        mvd_masks = _masks(encoding, "R(A) ->> R(L[M(D)])")
        plan = compile_plan(encoding, fd_masks, mvd_masks)
        assert plan.rhs_dc[0] is not None
        assert plan.rhs_singletons[0] is not None
        assert plan.rhs_overlap[0] is None
        assert plan.rhs_dc[1] is None
        assert plan.rhs_overlap[1] is not None

    def test_sigma_mismatch_is_rejected_by_the_kernel(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)")
        plan = compile_plan(encoding, fd_masks, [])
        with pytest.raises(ValueError, match="does not match"):
            closure_of_masks_fast(encoding, 0, fd_masks + fd_masks, [],
                                  plan=plan)


class TestPickleDeterminism:
    def test_same_sigma_compiles_to_identical_bytes(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(A) -> R(B)")
        mvd_masks = _masks(encoding, "R(B) ->> R(C)")
        first = pickle.dumps(compile_plan(encoding, fd_masks, mvd_masks),
                             protocol=pickle.HIGHEST_PROTOCOL)
        second = pickle.dumps(compile_plan(encoding, fd_masks, mvd_masks),
                              protocol=pickle.HIGHEST_PROTOCOL)
        assert first == second

    def test_roundtrip_preserves_tables_and_answers(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(B) -> R(C)")
        mvd_masks = _masks(encoding, "R(C) ->> R(L[M(D)])")
        plan = compile_plan(encoding, fd_masks, mvd_masks)
        clone = pickle.loads(pickle.dumps(plan))
        assert isinstance(clone, CompiledPlan)
        for name in ("fd_masks", "mvd_masks", "deps", "fd_count", "origin",
                     "folded_of", "requeue_masks", "rhs_tilde"):
            assert getattr(clone, name) == getattr(plan, name), name
        x = plan.fd_masks[0][0]
        assert (closure_of_masks_fast(clone.encoding, x, clone.fd_masks,
                                      clone.mvd_masks, plan=clone)
                == closure_of_masks_fast(encoding, x, fd_masks, mvd_masks))

    def test_incremental_reuse_equals_fresh_compile(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(B) -> R(C)")
        mvd_masks = _masks(encoding, "R(C) ->> R(L[M(D)])")
        old = compile_plan(encoding, fd_masks[:1], [])
        incremental = compile_plan(encoding, fd_masks, mvd_masks, reuse=old)
        fresh = compile_plan(encoding, fd_masks, mvd_masks)
        assert (pickle.dumps(incremental, protocol=pickle.HIGHEST_PROTOCOL)
                == pickle.dumps(fresh, protocol=pickle.HIGHEST_PROTOCOL))


class TestKernelEquivalence:
    def test_plan_on_equals_plan_off_everywhere(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(B) -> R(C)",
                          "R(A) -> R(B)")
        mvd_masks = _masks(encoding, "R(C) ->> R(L[M(D)])",
                           "R(C) ->> R(L[M(D)])", "R(L[M(E)]) ->> R(A)")
        plan = compile_plan(encoding, fd_masks, mvd_masks)
        for generators in range(encoding.full + 1):
            x = encoding.down_close(generators)
            off = closure_of_masks_fast(encoding, x, fd_masks, mvd_masks)
            on = closure_of_masks_fast(encoding, x, fd_masks, mvd_masks,
                                       plan=plan)
            assert on == off, format(x, "#x")   # (X⁺, DB, passes)

    def test_fired_reports_original_indices_for_duplicates(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(A) -> R(B)")
        plan = compile_plan(encoding, fd_masks, [])
        fired: set[int] = set()
        closure_of_masks_fast(encoding, fd_masks[0][0], fd_masks, [],
                              fired=fired, plan=plan)
        assert fired == {0}      # the FIRST original index, never {1}

    def test_warm_start_pending_uses_original_indices(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(A) -> R(B)",
                          "R(B) -> R(C)")
        plan = compile_plan(encoding, fd_masks, [])
        x = fd_masks[0][0]
        partial = closure_of_masks_fast(encoding, x, fd_masks[:2], [],
                                        plan=compile_plan(encoding,
                                                          fd_masks[:2], []))
        resumed = closure_of_masks_fast(
            encoding, x, fd_masks, [], plan=plan,
            warm_start=(partial[0], partial[1], [2]),
        )
        assert resumed[:2] == closure_of_masks_fast(encoding, x, fd_masks,
                                                    [], plan=plan)[:2]

    def test_requeue_scanned_shrinks_with_the_inverted_index(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(B) -> R(C)",
                          "R(C) -> R(L[M(D)])")
        plan = compile_plan(encoding, fd_masks, [])
        x = fd_masks[0][0]
        off, on = KernelStats(), KernelStats()
        closure_of_masks_fast(encoding, x, fd_masks, [], stats=off)
        closure_of_masks_fast(encoding, x, fd_masks, [], stats=on, plan=plan)
        assert on.requeue_scanned < off.requeue_scanned
        assert (on.passes, on.firings, on.requeues) == (
            off.passes, off.firings, off.requeues)

    def test_engines_without_plan_support_drop_it_silently(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)")
        plan = compile_plan(encoding, fd_masks, [])
        x = fd_masks[0][0]
        expected = get_engine("worklist").run(encoding, x, fd_masks, [],
                                              plan=plan)
        for name in ("naive", "reference"):
            outcome = get_engine(name).run(encoding, x, fd_masks, [],
                                           plan=plan)
            assert outcome[:2] == expected[:2], name


class TestClosureIntervalCache:
    def test_exact_then_interval_then_miss(self):
        cache = ClosureIntervalCache()
        cache.store(0b001, 0b111)
        assert cache.lookup(0b001) == 0b111          # exact
        assert cache.lookup(0b011) == 0b111          # 0b001 ≤ X ≤ 0b111
        assert cache.lookup(0b1000) is None          # outside every interval
        assert cache.info() == (1, 1, 1, 1)

    def test_interval_requires_both_bounds(self):
        cache = ClosureIntervalCache()
        cache.store(0b010, 0b011)
        assert cache.lookup(0b001) is None     # X' ≰ X
        assert cache.lookup(0b110) is None     # X ≰ X'⁺
        assert cache.info().misses == 2

    def test_store_is_bounded_and_discard_forgets(self):
        cache = ClosureIntervalCache(maxsize=2)
        cache.store(1, 1)
        cache.store(2, 2)
        cache.store(4, 4)                       # evicts the oldest (1)
        assert len(cache) == 2
        assert cache.lookup(1) is None
        cache.discard(2)
        assert cache.lookup(2) is None
        assert cache.lookup(4) == 4

    def test_clear_keeps_counters_reset_drops_them(self):
        cache = ClosureIntervalCache()
        cache.store(1, 1)
        cache.lookup(1)
        cache.clear()
        assert len(cache) == 0 and cache.info().exact_hits == 1
        cache.reset()
        assert cache.info() == (0, 0, 0, 0)

    def test_maxsize_validation(self):
        with pytest.raises(ValueError, match="maxsize"):
            ClosureIntervalCache(maxsize=0)


class TestSessionIntegration:
    def test_plan_recompiles_only_on_sigma_edits(self):
        session = Session("R(A, B, C)", ["R(A) -> R(B)"])
        first = session.plan
        assert session.plan is first                 # lazy + stable
        session.add("R(B) -> R(C)")
        second = session.plan
        assert second is not first
        assert second.sigma_size == 2
        session.retract("R(B) -> R(C)")
        assert session.plan.sigma_size == 1

    def test_interval_hit_answers_without_a_kernel_run(self):
        session = Session("R(A, B, C)", ["R(A) -> R(B)"])
        a_mask = session.encoding.encode(session.attribute("R(A)"))
        ab_mask = session.encoding.encode(session.attribute("R(A, B)"))
        closure = session.closure_mask_for(a_mask)
        assert closure == session.closure_mask_for(ab_mask)   # A ≤ AB ≤ A⁺
        assert session.kernel_stats.runs == 1                 # no second run
        info = session.cache_info().plan
        assert info.interval_hits == 1

    def test_sigma_edit_clears_the_interval_cache(self):
        session = Session("R(A, B, C)", ["R(A) -> R(B)"])
        a_mask = session.encoding.encode(session.attribute("R(A)"))
        ab_mask = session.encoding.encode(session.attribute("R(A, B)"))
        session.closure_mask_for(a_mask)
        session.add("R(B) -> R(C)")
        grown = session.closure_mask_for(ab_mask)
        c_mask = session.encoding.encode(session.attribute("R(C)"))
        assert c_mask & grown == c_mask       # stale interval would miss C

    def test_interval_hits_are_closure_exact_for_fd_membership(self):
        session = Session("R(A, B, C)", ["R(A) -> R(B)", "R(B) -> R(C)"])
        assert session.implies("R(A) -> R(C)")
        assert session.implies("R(A, B) -> R(C)")     # interval-answered
        assert not session.implies("R(C) -> R(A)")
        assert session.is_superkey("R(A)")
