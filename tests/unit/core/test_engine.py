"""Unit tests for the worklist kernel (repro.core.engine)."""

import pytest

from repro import Schema
from repro.attributes import BasisEncoding
from repro.attributes.nested import Flat, ListAttr, Record
from repro.core.closure import closure_of_masks, compute_closure
from repro.core.engine import KernelStats, closure_of_masks_fast
from repro.core.trace import TraceRecorder


@pytest.fixture()
def pubcrawl():
    schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    sigma = schema.dependencies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
    return schema, sigma


class TestBitIdentical:
    def test_paper_example(self, pubcrawl):
        schema, sigma = pubcrawl
        enc = schema.encoding
        for x_text in ("Pubcrawl(Person)", "Pubcrawl(Visit[λ])",
                       "Pubcrawl(Visit[Drink(Beer)])"):
            x = enc.encode(schema.attribute(x_text))
            fast = compute_closure(enc, x, sigma, kernel="worklist")
            naive = compute_closure(enc, x, sigma, kernel="naive")
            assert fast.closure_mask == naive.closure_mask
            assert fast.blocks == naive.blocks

    def test_non_cc_closed_initial_complement(self):
        # Regression: X^C here contains a basis attribute without its
        # whole up-set, so it is *not* CC-closed; the naive FD step
        # normalises every block whenever Ṽ ≠ λ, and the worklist kernel
        # must do the same even though no possessed bit meets Ṽ.
        root = ListAttr("L1", Record("R2", (
            ListAttr("L3", Flat("A4")),
            Record("R5", (Flat("A6"), Flat("A7"))),
            Record("R8", (Flat("A9"), Flat("A10"))),
        )))
        enc = BasisEncoding(root)
        fds = [(120, 21)]
        naive = closure_of_masks(enc, 29, fds, [])
        fast = closure_of_masks_fast(enc, 29, fds, [])
        assert naive[0] == fast[0]
        assert naive[1] == fast[1]

    def test_empty_sigma(self, pubcrawl):
        schema, _ = pubcrawl
        enc = schema.encoding
        sigma = schema.dependencies()
        x = enc.encode(schema.attribute("Pubcrawl(Person)"))
        fast = compute_closure(enc, x, sigma, kernel="worklist")
        naive = compute_closure(enc, x, sigma, kernel="naive")
        assert (fast.closure_mask, fast.blocks) == (
            naive.closure_mask, naive.blocks)

    def test_full_and_empty_lhs(self, pubcrawl):
        schema, sigma = pubcrawl
        enc = schema.encoding
        for x in (0, enc.full):
            fast = compute_closure(enc, x, sigma, kernel="worklist")
            naive = compute_closure(enc, x, sigma, kernel="naive")
            assert (fast.closure_mask, fast.blocks) == (
                naive.closure_mask, naive.blocks)


class TestKernelSelection:
    def test_unknown_kernel_rejected(self, pubcrawl):
        schema, sigma = pubcrawl
        with pytest.raises(ValueError, match="unknown kernel"):
            compute_closure(schema.encoding, 0, sigma, kernel="quantum")

    def test_tracing_forces_naive(self, pubcrawl):
        schema, sigma = pubcrawl
        with pytest.raises(ValueError, match="naive"):
            compute_closure(schema.encoding, 0, sigma,
                            trace=TraceRecorder(), kernel="worklist")

    def test_tracing_works_with_auto(self, pubcrawl):
        schema, sigma = pubcrawl
        trace = TraceRecorder()
        x = schema.encoding.encode(schema.attribute("Pubcrawl(Person)"))
        result = compute_closure(schema.encoding, x, sigma, trace=trace)
        assert result.passes >= 1
        assert trace.steps


class TestKernelStats:
    def test_counters_populated(self, pubcrawl):
        schema, sigma = pubcrawl
        stats = KernelStats()
        x = schema.encoding.encode(schema.attribute("Pubcrawl(Person)"))
        compute_closure(schema.encoding, x, sigma, stats=stats)
        assert stats.runs == 1
        assert stats.passes >= 1
        assert stats.firings >= len(list(sigma))

    def test_accumulates_and_resets(self, pubcrawl):
        schema, sigma = pubcrawl
        stats = KernelStats()
        x = schema.encoding.encode(schema.attribute("Pubcrawl(Person)"))
        compute_closure(schema.encoding, x, sigma, stats=stats)
        compute_closure(schema.encoding, x, sigma, stats=stats)
        assert stats.runs == 2
        stats.reset()
        assert stats.runs == 0 and stats.firings == 0

    def test_as_dict_and_repr(self):
        stats = KernelStats()
        dumped = stats.as_dict()
        assert set(dumped) == set(KernelStats.__slots__)
        assert "runs=0" in repr(stats)
