"""Unit tests for the Session: warm starts, provenance-exact retraction.

The exact-count tests drive ``KernelStats.runs`` directly: a cache hit
must not run the kernel, a retraction must evict exactly the entries
whose recorded firing set contains the retracted dependency, and a
warm start must not recompute from scratch what the cached fixpoint
already paid for.
"""

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute
from repro.core import Session, compute_closure, minimal_cover
from repro.core.membership import is_redundant
from repro.dependencies import DependencySet, parse_dependency


def s(text, root):
    return parse_subattribute(text, root)


@pytest.fixture()
def root():
    return p("R(A, B, C, D)")


@pytest.fixture()
def sigma(root):
    return DependencySet.parse(root, ["R(A) -> R(B)", "R(C) -> R(D)"])


class TestSigmaEditing:
    def test_add_and_len(self, root):
        session = Session(root)
        assert session.add("R(A) -> R(B)")
        assert not session.add("R(A) -> R(B)")  # duplicate
        assert len(session) == 1
        assert parse_dependency("R(A) -> R(B)", root) in session

    def test_add_validates(self, root):
        session = Session(root)
        foreign = parse_dependency("S(A) -> S(B)", p("S(A, B)"))
        with pytest.raises(Exception):
            session.add(foreign)
        assert len(session) == 0

    def test_retract_requires_membership(self, root, sigma):
        session = Session(root, sigma)
        with pytest.raises(ValueError, match="not a member"):
            session.retract("R(B) -> R(A)")

    def test_retract_returns_member(self, root, sigma):
        session = Session(root, sigma)
        removed = session.retract("R(A) -> R(B)")
        assert removed == parse_dependency("R(A) -> R(B)", root)
        assert len(session) == 1

    def test_sigma_snapshot_tracks_edits(self, root, sigma):
        session = Session(root, sigma)
        assert set(session.sigma) == set(sigma)
        session.retract("R(A) -> R(B)")
        session.add("R(B) -> R(C)")
        assert set(session.sigma) == {
            parse_dependency("R(C) -> R(D)", root),
            parse_dependency("R(B) -> R(C)", root),
        }

    def test_maxsize_validation(self, root):
        with pytest.raises(ValueError, match="maxsize"):
            Session(root, maxsize=0)


class TestQueriesAndCache:
    def test_queries_match_compute_closure(self, root, sigma):
        session = Session(root, sigma)
        expected = compute_closure(session.encoding, s("R(A)", root), sigma)
        assert session.closure("R(A)") == expected.closure
        assert set(session.dependency_basis("R(A)")) == set(
            expected.dependency_basis()
        )
        assert session.implies("R(A) -> R(B)")
        assert not session.implies("R(A) -> R(C)")
        assert not session.is_superkey("R(A)")
        assert session.is_superkey("R(A, C)")

    def test_hit_does_not_run_kernel(self, root, sigma):
        session = Session(root, sigma)
        session.closure("R(A)")
        runs = session.kernel_stats.runs
        session.closure("R(A)")
        assert session.kernel_stats.runs == runs
        assert session.cache_info().hits == 1

    def test_lru_eviction(self, root, sigma):
        session = Session(root, sigma, maxsize=2)
        for x in ("R(A)", "R(B)", "R(C)"):
            session.closure(x)
        info = session.cache_info()
        assert info.computed == 2
        assert info.evictions == 1

    def test_cache_clear_resets(self, root, sigma):
        session = Session(root, sigma)
        session.closure("R(A)")
        session.closure("R(A)")
        session.cache_clear()
        info = session.cache_info()
        assert (info.computed, info.hits) == (0, 0)
        assert session.kernel_stats.runs == 0


class TestWarmStarts:
    def test_add_then_requery_warm_starts(self, root):
        session = Session(root, ["R(A) -> R(B)"])
        assert session.closure("R(A)") == s("R(A, B)", root)
        session.add("R(B) -> R(C)")
        # The cached entry is stale but usable: the fixpoint resumes with
        # only the new dependency pending.
        assert session.closure("R(A)") == s("R(A, B, C)", root)
        assert session.cache_info().warm_starts == 1

    def test_warm_result_equals_fresh_session(self, root):
        texts = ["R(A) -> R(B)", "R(B) ->> R(C)", "R(C) -> R(D)"]
        incremental = Session(root, texts[:1])
        for x in ("R(A)", "R(B)", "R(A, C)"):
            incremental.closure(x)
        for text in texts[1:]:
            incremental.add(text)
        fresh = Session(root, texts)
        for x in ("R(A)", "R(B)", "R(A, C)"):
            warm = incremental.result_for(x)
            cold = fresh.result_for(x)
            assert warm.closure_mask == cold.closure_mask, x
            assert warm.blocks == cold.blocks, x

    def test_warm_start_extends_provenance(self, root):
        session = Session(root, ["R(A) -> R(B)"])
        session.closure("R(A)")
        session.add("R(B) -> R(C)")
        session.closure("R(A)")  # warm start; the new FD fires
        session.retract("R(B) -> R(C)")
        info = session.cache_info()
        assert info.invalidations == 1  # the resumed entry depends on it now


class TestRetractionProvenance:
    def test_exact_eviction_counts(self, root, sigma):
        session = Session(root, sigma)
        session.closure("R(A)")  # fires only R(A) -> R(B)
        session.closure("R(C)")  # fires only R(C) -> R(D)
        runs = session.kernel_stats.runs
        assert runs == 2

        session.retract("R(C) -> R(D)")
        info = session.cache_info()
        assert info.invalidations == 1  # the R(C) entry and nothing else
        assert info.retained == 1       # the R(A) entry survives

        # The retained entry must be an immediate hit: its firing set
        # excludes the retracted dependency, so its fixpoint is intact.
        session.closure("R(A)")
        assert session.kernel_stats.runs == runs
        assert session.cache_info().hits == 1

        # The evicted lhs recomputes against the smaller sigma.
        assert session.closure("R(C)") == s("R(C)", root)
        assert session.kernel_stats.runs == runs + 1

    def test_noop_member_never_evicts(self, root, sigma):
        # R(D) -> R(D) is trivial: it can never fire productively, so
        # retracting it must keep every cache entry.
        session = Session(root, sigma)
        session.add("R(D) -> R(D)")
        session.closure("R(A)")
        session.closure("R(C)")
        runs = session.kernel_stats.runs
        session.retract("R(D) -> R(D)")
        info = session.cache_info()
        assert info.invalidations == 0
        assert info.retained == 2
        session.closure("R(A)")
        session.closure("R(C)")
        assert session.kernel_stats.runs == runs

    def test_retract_then_readd_is_pending_again(self, root, sigma):
        session = Session(root, sigma)
        session.closure("R(A)")
        session.retract("R(C) -> R(D)")  # retained (never fired for R(A))
        session.add("R(C) -> R(D)")
        # The entry forgot the retracted member; re-adding makes it
        # pending, and the warm start proves nothing changed.
        assert session.closure("R(A)") == s("R(A, B)", root)
        assert session.cache_info().warm_starts == 1

    def test_eviction_is_sound_after_retraction(self, root):
        texts = ["R(A) -> R(B)", "R(B) -> R(C)", "R(C) -> R(D)"]
        session = Session(root, texts)
        assert session.closure("R(A)") == root  # all three fire
        session.retract("R(B) -> R(C)")
        assert session.cache_info().invalidations == 1
        assert session.closure("R(A)") == s("R(A, B)", root)


class TestSeed:
    def test_seed_installs_hit(self, root, sigma):
        session = Session(root, sigma)
        mask = session.encoding.encode(s("R(A)", root))
        result = compute_closure(session.encoding, s("R(A)", root), sigma)
        session.seed(mask, result, result.fired)
        assert session.is_cached(mask)
        assert session.result_for_mask(mask) is result
        assert session.kernel_stats.runs == 0

    def test_seed_without_provenance_is_conservative(self, root, sigma):
        session = Session(root, sigma)
        mask = session.encoding.encode(s("R(A)", root))
        result = compute_closure(session.encoding, s("R(A)", root), sigma)
        bare = type(result)(result.encoding, result.x_mask,
                            result.closure_mask, result.blocks, result.passes)
        assert bare.fired is None
        session.seed(mask, bare)
        # All of sigma is assumed fired: any retraction evicts the entry.
        session.retract("R(C) -> R(D)")
        assert session.cache_info().invalidations == 1


class TestEngines:
    def test_engine_switch_mid_session(self, root, sigma):
        session = Session(root, sigma)
        first = session.result_for("R(A)")
        session.set_engine("reference")
        assert session.engine.name == "reference"
        # Cached results stay valid across the switch.
        assert session.result_for("R(A)") is first

    def test_reference_engine_falls_back_to_cold_recompute(self, root):
        session = Session(root, ["R(A) -> R(B)"], engine="reference")
        session.closure("R(A)")
        session.add("R(B) -> R(C)")
        assert session.closure("R(A)") == s("R(A, B, C)", root)
        assert session.cache_info().warm_starts == 0

    def test_all_engines_agree_after_edits(self, root):
        texts = ["R(A) -> R(B)", "R(B) ->> R(C)", "R(A) ->> R(B, C)"]
        results = {}
        for engine in ("worklist", "naive", "reference"):
            session = Session(root, texts[:2], engine=engine)
            session.closure("R(A)")
            session.add(texts[2])
            session.retract(texts[0])
            result = session.result_for("R(A)")
            results[engine] = (result.closure_mask, result.blocks)
        assert len(set(results.values())) == 1, results

    def test_unknown_engine_rejected(self, root):
        with pytest.raises(ValueError, match="unknown kernel"):
            Session(root, engine="quantum")


class TestDescribeStats:
    def test_describe_stats_lines(self, root, sigma):
        session = Session(root, sigma)
        session.closure("R(A)")
        session.closure("R(A)")
        text = session.describe_stats()
        assert "session: computed=1 hits=1" in text
        assert "engine=worklist" in text
        assert "|Σ|=2" in text
        assert "kernel:   runs=1" in text
        assert "encoding:" in text

    def test_repr(self, root, sigma):
        session = Session(root, sigma)
        assert "engine='worklist'" in repr(session)


class TestAgainstFreshRecompute:
    """Session-driven membership sweeps equal the one-shot implementation."""

    CORPUS_SIGMAS = [
        ("R(A, B, C)",
         ["R(A) -> R(B)", "R(B) -> R(C)", "R(A) -> R(C)"]),
        ("R(A, B, C)",
         ["R(A) ->> R(B)", "R(A) ->> R(C)", "R(A) -> R(B)"]),
        ("Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
         ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",
          "Pubcrawl(Visit[λ]) -> Pubcrawl(Person)",
          "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])"]),
        ("R(A, L[M(B, C)])",
         ["R(A) -> R(L[M(B, λ)])", "R(L[λ]) ->> R(A)",
          "R(A) -> R(L[M(B, C)])"]),
    ]

    @pytest.mark.parametrize("root_text, texts", CORPUS_SIGMAS)
    def test_minimal_cover_matches_one_shot_recompute(self, root_text, texts):
        root = p(root_text)
        sigma = DependencySet.parse(root, texts)
        encoding = BasisEncoding(root)

        def one_shot_implies(candidate, dependency):
            result = compute_closure(encoding, dependency.lhs, candidate)
            rhs_mask = encoding.encode(dependency.rhs)
            if dependency.is_fd:
                return result.implies_fd_rhs(rhs_mask)
            return result.implies_mvd_rhs(rhs_mask)

        kept = list(sigma)
        for dependency in reversed(list(sigma)):
            candidate = DependencySet(
                root, [d for d in kept if d != dependency]
            )
            if one_shot_implies(candidate, dependency):
                kept = list(candidate)

        assert set(minimal_cover(sigma)) == set(kept)

    @pytest.mark.parametrize("root_text, texts", CORPUS_SIGMAS)
    def test_is_redundant_matches_one_shot_recompute(self, root_text, texts):
        root = p(root_text)
        sigma = DependencySet.parse(root, texts)
        encoding = BasisEncoding(root)
        for dependency in sigma:
            rest = DependencySet(root, [d for d in sigma if d != dependency])
            result = compute_closure(encoding, dependency.lhs, rest)
            rhs_mask = encoding.encode(dependency.rhs)
            if dependency.is_fd:
                expected = result.implies_fd_rhs(rhs_mask)
            else:
                expected = result.implies_mvd_rhs(rhs_mask)
            assert is_redundant(sigma, dependency) == expected, dependency
