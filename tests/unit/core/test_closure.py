"""Unit tests for Algorithm 5.1 (core/closure.py)."""

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute
from repro.core import compute_closure
from repro.dependencies import DependencySet


def s(text, root):
    return parse_subattribute(text, root)


class TestInitialisation:
    def test_empty_sigma_returns_reflexive_closure(self):
        root = p("R(A, B)")
        enc = BasisEncoding(root)
        sigma = DependencySet(root)
        result = compute_closure(enc, s("R(A)", root), sigma)
        assert result.closure == s("R(A)", root)
        # DepB with empty Σ: every attribute of X plus the complement block.
        assert set(result.dependency_basis()) == {
            s("R(A)", root),
            s("R(B)", root),
        }

    def test_closure_of_root_is_root(self):
        root = p("R(A, L[B])")
        enc = BasisEncoding(root)
        result = compute_closure(enc, root, DependencySet(root))
        assert result.closure == root
        # X^C = λ is dropped; DB_new = MaxB(X^CC) = the maximal basis
        # attributes as singleton blocks, all inside the closure.
        assert result.blocks == frozenset(
            enc.below[i] for i in range(enc.size) if enc.maximal >> i & 1
        )

    def test_closure_of_bottom_with_empty_sigma(self):
        root = p("R(A, B)")
        enc = BasisEncoding(root)
        result = compute_closure(enc, s("λ", root), DependencySet(root))
        assert result.closure == s("λ", root)
        assert result.blocks == {enc.full}

    def test_accepts_mask_input(self):
        root = p("R(A, B)")
        enc = BasisEncoding(root)
        result = compute_closure(enc, 0, DependencySet(root))
        assert result.x_mask == 0
        assert result.x == s("λ", root)


class TestClosureProperties:
    def test_x_below_closure(self):
        root = p("R(A, B, C)")
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        result = compute_closure(enc, s("R(A)", root), sigma)
        assert result.closure == s("R(A, B)", root)

    def test_transitive_fd_chain(self):
        root = p("R(A, B, C, D)")
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(
            root, ["R(A) -> R(B)", "R(B) -> R(C)", "R(C) -> R(D)"]
        )
        result = compute_closure(enc, s("R(A)", root), sigma)
        assert result.closure == root

    def test_closure_is_idempotent(self):
        root = p("R(A, B, C)")
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(root, ["R(A) -> R(B)", "R(B) ->> R(C)"])
        first = compute_closure(enc, s("R(A)", root), sigma)
        second = compute_closure(enc, first.closure, sigma)
        assert second.closure == first.closure

    def test_mixed_meet_updates_closure(self):
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(
            root, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        result = compute_closure(enc, s("Pubcrawl(Person)", root), sigma)
        assert result.closure == s("Pubcrawl(Person, Visit[λ])", root)


class TestBlockStructure:
    def test_blocks_are_joins_of_maximal_basis_attributes(self, example51,
                                                          example51_encoding):
        result = compute_closure(
            example51_encoding, example51.x(), example51.sigma
        )
        for block in result.blocks:
            assert example51_encoding.double_complement(block) == block

    def test_blocks_partition_maximal_basis(self, example51, example51_encoding):
        enc = example51_encoding
        result = compute_closure(enc, example51.x(), example51.sigma)
        covered = 0
        for block in result.blocks:
            top = enc.maximal_of(block)
            assert not (covered & top), "maximal attributes shared across blocks"
            covered |= top
        assert covered == enc.maximal

    def test_pairwise_block_meets_inside_closure(self, example51,
                                                 example51_encoding):
        # The §4.2 invariant the witness construction relies on.
        enc = example51_encoding
        result = compute_closure(enc, example51.x(), example51.sigma)
        blocks = sorted(result.blocks)
        for i, first in enumerate(blocks):
            for second in blocks[i + 1:]:
                assert (first & second) & ~result.closure_mask == 0


class TestMembershipChecks:
    @pytest.fixture()
    def result(self):
        root = p("R(A, B, C)")
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        return enc, compute_closure(enc, s("R(A)", root), sigma)

    def test_fd_rhs(self, result):
        enc, res = result
        root = enc.root
        assert res.implies_fd_rhs(enc.encode(s("R(B)", root)))
        assert res.implies_fd_rhs(enc.encode(s("R(A, B)", root)))
        assert not res.implies_fd_rhs(enc.encode(s("R(C)", root)))

    def test_mvd_rhs(self, result):
        enc, res = result
        root = enc.root
        assert res.implies_mvd_rhs(enc.encode(s("R(B)", root)))  # from the FD
        assert res.implies_mvd_rhs(enc.encode(s("R(C)", root)))  # complementation
        assert res.implies_mvd_rhs(enc.encode(s("R(B, C)", root)))  # join
        assert res.implies_mvd_rhs(enc.encode(s("λ", root)))  # empty join

    def test_describe_mentions_all_parts(self, result):
        _, res = result
        text = res.describe()
        assert "X+" in text and "DepB" in text


class TestDeterminism:
    def test_same_input_same_passes(self, example51, example51_encoding):
        first = compute_closure(example51_encoding, example51.x(), example51.sigma)
        second = compute_closure(example51_encoding, example51.x(), example51.sigma)
        assert first.closure_mask == second.closure_mask
        assert first.blocks == second.blocks
        assert first.passes == second.passes

    def test_dependency_basis_sorted(self, example51, example51_encoding):
        result = compute_closure(example51_encoding, example51.x(), example51.sigma)
        assert list(result.dependency_basis()) == list(result.dependency_basis())
