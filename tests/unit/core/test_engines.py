"""Unit tests for the engine registry (repro.core.engines)."""

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p
from repro.core.engines import (
    Engine,
    available_engines,
    get_default_engine,
    get_engine,
    register_engine,
    set_default_engine,
)


@pytest.fixture()
def encoding():
    return BasisEncoding(p("R(A, B, C)"))


def _masks(encoding, *texts):
    from repro.dependencies import parse_dependency

    pairs = []
    for text in texts:
        dependency = parse_dependency(text, encoding.root)
        pairs.append((encoding.encode(dependency.lhs),
                      encoding.encode(dependency.rhs)))
    return pairs


class TestRegistry:
    def test_builtin_engines_registered(self):
        names = available_engines()
        assert {"worklist", "naive", "reference"} <= set(names)

    def test_default_is_worklist(self):
        assert get_engine(None).name == "worklist"
        assert get_default_engine().name == "worklist"

    def test_unknown_name_error_message(self):
        with pytest.raises(ValueError) as info:
            get_engine("quantum")
        assert "unknown kernel 'quantum'" in str(info.value)
        assert "available:" in str(info.value)

    def test_set_default_returns_previous_and_validates(self):
        with pytest.raises(ValueError):
            set_default_engine("quantum")
        previous = set_default_engine("naive")
        try:
            assert previous == "worklist"
            assert get_default_engine().name == "naive"
        finally:
            set_default_engine(previous)
        assert get_default_engine().name == "worklist"

    def test_register_engine_roundtrip(self):
        probe = Engine(
            name="probe-engine",
            description="test-only",
            supports_warm_start=False,
            supports_trace=False,
            supports_plan=False,
            _run=lambda *a, **k: (0, frozenset(), 0),
        )
        register_engine(probe)
        try:
            assert get_engine("probe-engine") is probe
        finally:
            from repro.core import engines

            engines._REGISTRY.pop("probe-engine")


class TestRunContract:
    def test_engines_agree_on_masks(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)")
        mvd_masks = _masks(encoding, "R(B) ->> R(C)")
        x_mask = _masks(encoding, "R(A) -> R(A)")[0][0]
        outcomes = set()
        for name in ("worklist", "naive", "reference"):
            outcome = get_engine(name).run(
                encoding, x_mask, fd_masks, mvd_masks
            )
            outcomes.add((outcome[0], outcome[1]))
        assert len(outcomes) == 1

    def test_fired_collects_provenance(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(C) -> R(A)")
        x_mask = fd_masks[0][0]  # X = A: only the first FD can fire
        for name in ("worklist", "naive"):
            fired = set()
            get_engine(name).run(encoding, x_mask, fd_masks, [], fired=fired)
            assert fired == {0}, name

    def test_reference_provenance_is_conservative(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(C) -> R(A)")
        fired = set()
        get_engine("reference").run(
            encoding, fd_masks[0][0], fd_masks, [], fired=fired
        )
        assert fired == {0, 1}

    def test_warm_start_refused_without_support(self, encoding):
        with pytest.raises(ValueError, match="does not support warm starts"):
            get_engine("reference").run(
                encoding, 0, [], [], warm_start=(0, (), ())
            )

    def test_warm_start_resumes_fixpoint(self, encoding):
        fd_masks = _masks(encoding, "R(A) -> R(B)", "R(B) -> R(C)")
        x_mask = fd_masks[0][0]
        for name in ("worklist", "naive"):
            engine = get_engine(name)
            partial = engine.run(encoding, x_mask, fd_masks[:1], [])
            resumed = engine.run(
                encoding, x_mask, fd_masks, [],
                warm_start=(partial[0], partial[1], [1]),
            )
            cold = engine.run(encoding, x_mask, fd_masks, [])
            assert resumed[0] == cold[0], name
            assert resumed[1] == cold[1], name
