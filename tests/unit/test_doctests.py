"""Run every doctest in the library as part of the test suite.

The docstrings carry worked examples (many straight from the paper);
this keeps them honest — documentation that stops matching the code
fails the build.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # executing it would sys.exit
        yield info.name


MODULE_NAMES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def test_doctests_exist_somewhere():
    # Guard against the loop silently testing nothing.
    total = 0
    for module_name in MODULE_NAMES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        total += sum(len(example.examples) for example in finder.find(module))
    assert total > 30
