"""SessionStore lifecycle: init, append, snapshot, compact, recover."""

import json
import os
from collections import Counter

import pytest

from repro.serve.server import SessionManager
from repro.store import (
    SessionStore,
    WalCorruptionError,
    encode_record,
    inspect_store,
    load_manifest,
    read_segment,
    recover,
)
from repro.store.recovery import apply_record
from repro.store.wal import StoreError, WalRecord

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
DEP_A = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Beer)])"
DEP_B = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"


def fresh_store(tmp_path, manager=None, **kwargs):
    kwargs.setdefault("fsync", "off")
    store = SessionStore(str(tmp_path), **kwargs)
    store.start(manager if manager is not None else SessionManager())
    return store


def log(store, manager, op, params):
    """Apply one mutation to ``manager`` (when given) and WAL it."""
    if manager is not None:
        apply_record(manager, WalRecord(0, op, dict(params)),
                     origin=store.data_dir)
    store.append(op, params)


def log_session(store, manager=None, name="pub", deps=(DEP_A,)):
    log(store, manager, "open", {"name": name, "schema": SCHEMA})
    for dep in deps:
        log(store, manager, "add", {"session": name, "dependency": dep})


class TestLifecycle:
    def test_fresh_init(self, tmp_path):
        store = fresh_store(tmp_path)
        manifest = load_manifest(str(tmp_path))
        assert manifest.snapshot is None
        assert manifest.segments == ("wal-00000001.log",)
        assert store.last_seq == 0
        store.close()

    def test_double_start_refused(self, tmp_path):
        store = fresh_store(tmp_path)
        with pytest.raises(RuntimeError, match="already started"):
            store.start(SessionManager())
        store.close()

    def test_append_before_start_refused(self, tmp_path):
        store = SessionStore(str(tmp_path))
        with pytest.raises(RuntimeError, match="not started"):
            store.append("add", {})

    def test_bad_config(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            SessionStore(str(tmp_path), fsync="never")
        with pytest.raises(ValueError, match="thresholds"):
            SessionStore(str(tmp_path), compact_records=0)

    def test_stats(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store)
        stats = store.stats()
        assert stats["last_seq"] == 2
        assert stats["segment"] == "wal-00000001.log"
        assert stats["segment_records"] == 2
        assert stats["recovered_sessions"] == 0
        assert stats["compactions"] == 0
        store.close()


class TestRecover:
    def test_append_then_recover(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store, deps=(DEP_A, DEP_B))
        store.close()

        manager = SessionManager()
        store2 = fresh_store(tmp_path, manager)
        report = store2.stats()
        assert report["replayed_records"] == 3
        assert manager.names() == ("pub",)
        session = manager.peek("pub").session
        assert len(session) == 2
        assert store2.last_seq == 3
        store2.append("retract", {"session": "pub", "dependency": DEP_A})
        assert store2.last_seq == 4
        store2.close()

    def test_replay_preserves_generation(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store, deps=(DEP_A, DEP_B))
        store.close()
        manager = SessionManager()
        fresh_store(tmp_path, manager).close()
        # open bumps nothing; each replayed add bumps the generation
        assert manager.peek("pub").generation == 2

    def test_snapshot_restores_epoch_and_generation(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store)
        managed = manager.open("pub", SCHEMA, [DEP_A], replace=True)
        managed.generation = 9
        epoch = managed.epoch
        store.snapshot(manager.snapshot_state())
        store.close()

        manager2 = SessionManager()
        store2 = fresh_store(tmp_path, manager2)
        restored = manager2.peek("pub")
        assert (restored.epoch, restored.generation) == (epoch, 9)
        assert store2.stats()["replayed_records"] == 0
        store2.close()

    def test_torn_tail_repaired(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store)
        store.close()
        path = tmp_path / "wal-00000001.log"
        clean = path.read_bytes()
        path.write_bytes(clean + encode_record(3, "add", {})[:12])

        counters = Counter()
        store2 = fresh_store(tmp_path, counters=counters)
        assert counters["store.torn_records"] == 1
        assert store2.stats()["torn_records"] == 1
        assert path.read_bytes() == clean
        # new appends land on a clean boundary
        store2.append("close", {"session": "pub"})
        store2.close()
        records, _, tail = read_segment(str(path))
        assert [r.seq for r in records] == [1, 2, 3]
        assert tail == b""

    def test_mid_stream_corruption_refuses_startup(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store, deps=(DEP_A, DEP_B))
        store.close()
        path = tmp_path / "wal-00000001.log"
        data = bytearray(path.read_bytes())
        data[25] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            fresh_store(tmp_path)

    def test_unreplayable_record_refuses_startup(self, tmp_path):
        store = fresh_store(tmp_path)
        store.append("add", {"session": "ghost", "dependency": DEP_A})
        store.close()
        with pytest.raises(WalCorruptionError, match="does not re-execute"):
            fresh_store(tmp_path)

    def test_non_monotonic_seq_refuses_startup(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store)
        store.close()
        path = tmp_path / "wal-00000001.log"
        with open(path, "ab") as handle:
            handle.write(encode_record(2, "close", {"session": "pub"}))
        with pytest.raises(WalCorruptionError, match="monotonic"):
            fresh_store(tmp_path)

    def test_recover_requires_fresh_manager(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store)
        store.close()
        manager = SessionManager()
        manager.open("pub", SCHEMA)
        # replaying 'open' without replace collides with the live session
        with pytest.raises(WalCorruptionError):
            recover(str(tmp_path), manager)


class TestSnapshotCompact:
    def test_snapshot_keeps_segments(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store)
        name = store.snapshot(manager.snapshot_state())
        manifest = load_manifest(str(tmp_path))
        assert manifest.snapshot == name
        assert manifest.segments == ("wal-00000001.log",)
        store.close()

    def test_snapshot_replaces_previous(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store)
        first = store.snapshot(manager.snapshot_state())
        store.append("add", {"session": "pub", "dependency": DEP_B})
        second = store.snapshot(manager.snapshot_state())
        assert first != second
        assert not (tmp_path / first).exists()
        assert (tmp_path / second).exists()
        store.close()

    def test_compact_rolls_segment(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store, manager, deps=(DEP_A, DEP_B))
        result = store.compact(manager.snapshot_state())
        assert result["segments_removed"] == 1
        assert result["last_seq"] == 3
        manifest = load_manifest(str(tmp_path))
        assert manifest.segments == ("wal-00000002.log",)
        assert not (tmp_path / "wal-00000001.log").exists()
        # appends continue on the fresh segment with the global seq
        log(store, manager, "close", {"session": "pub"})
        assert store.last_seq == 4
        store.close()

        manager2 = SessionManager()
        store2 = fresh_store(tmp_path, manager2)
        assert manager2.names() == ()
        assert store2.last_seq == 4
        store2.close()

    def test_should_compact_thresholds(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager, compact_records=3)
        log_session(store)
        assert not store.should_compact()
        store.append("add", {"session": "pub", "dependency": DEP_B})
        assert store.should_compact()
        assert store.maybe_compact(manager.snapshot_state())
        assert not store.should_compact()
        assert not store.maybe_compact(manager.snapshot_state())
        store.close()

    def test_orphan_sweep(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store)
        store.close()
        # debris a crashed compaction could leave behind
        (tmp_path / "snapshot-00000000000000ff.json").write_text("{}")
        (tmp_path / "wal-00000009.log").write_bytes(b"")
        (tmp_path / "snapshot-1.json.tmp").write_bytes(b"")

        counters = Counter()
        fresh_store(tmp_path, counters=counters).close()
        assert counters["store.orphans_removed"] == 3
        names = set(os.listdir(tmp_path))
        assert "wal-00000009.log" not in names
        assert "snapshot-00000000000000ff.json" not in names


class TestReplicationTailing:
    """The follower-facing surface: tailing, sequenced appends, resets."""

    def test_records_since_serves_the_tail(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store, deps=(DEP_A, DEP_B))
        tail = store.records_since(1)
        assert [r.seq for r in tail] == [2, 3]
        assert tail[0].op == "add"
        assert store.records_since(0, limit=2)[-1].seq == 2
        assert store.records_since(3) == []
        store.close()

    def test_records_since_beyond_last_seq_needs_reset(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store)
        # a follower claiming a future seq cannot be tailed to
        assert store.records_since(9) is None
        store.close()

    def test_records_since_before_history_needs_reset(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store, manager)
        store.compact(manager.snapshot_state())
        # seqs 1..2 were folded into the snapshot: a cold subscriber
        # (from_seq=0) cannot be served a contiguous tail
        assert store.records_since(0) is None
        assert store.records_since(2) == []
        store.close()

    def test_records_since_spans_a_snapshot_boundary(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store, manager)
        store.compact(manager.snapshot_state())
        log(store, manager, "add", {"session": "pub", "dependency": DEP_B})
        assert [r.seq for r in store.records_since(2)] == [3]
        assert store.records_since(1) is None  # seq 2 is gone
        store.close()

    def test_append_record_keeps_the_primary_numbering(self, tmp_path):
        store = fresh_store(tmp_path)
        assert store.append_record(1, "open", {"name": "pub",
                                               "schema": SCHEMA}) == 1
        assert store.last_seq == 1
        with pytest.raises(StoreError, match="does not follow"):
            store.append_record(3, "add", {})
        with pytest.raises(StoreError, match="does not follow"):
            store.append_record(1, "add", {})  # duplicates refused too
        store.close()

    def test_reset_to_rebases_the_store(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store, manager)
        result = store.reset_to(manager.snapshot_state(), 41)
        assert store.last_seq == 41
        assert result["last_seq"] == 41
        # the next replicated record must be exactly 42
        store.append_record(42, "add", {"session": "pub",
                                        "dependency": DEP_B})
        with pytest.raises(StoreError, match="negative"):
            store.reset_to({}, -1)
        store.close()

        # a restart recovers the rebased numbering from disk
        manager2 = SessionManager()
        store2 = fresh_store(tmp_path, manager2)
        assert store2.last_seq == 42
        assert len(manager2.peek("pub").session) == 2
        store2.close()


class TestInspect:
    def test_uninitialized(self, tmp_path):
        assert inspect_store(str(tmp_path)) == {
            "data_dir": str(tmp_path), "initialized": False}

    def test_summary(self, tmp_path):
        manager = SessionManager()
        store = fresh_store(tmp_path, manager)
        log_session(store, manager)
        store.snapshot(manager.snapshot_state())
        log(store, manager, "add", {"session": "pub", "dependency": DEP_B})
        store.close()
        info = inspect_store(str(tmp_path))
        assert info["initialized"]
        assert info["snapshot"]["last_seq"] == 2
        assert info["snapshot"]["sessions"]["pub"]["sigma"] == 1
        assert info["last_seq"] == 3
        assert info["next_seq"] == 4
        assert info["torn_tail_bytes"] == 0
        assert json.dumps(info)  # JSON-serializable for the CLI

    def test_torn_tail_reported_not_repaired(self, tmp_path):
        store = fresh_store(tmp_path)
        log_session(store)
        store.close()
        path = tmp_path / "wal-00000001.log"
        before = path.read_bytes()
        path.write_bytes(before + b"torn")
        info = inspect_store(str(tmp_path))
        assert info["torn_tail_bytes"] == 4
        assert path.read_bytes() == before + b"torn"
