"""Snapshot files, the manifest, and their corruption policies."""

import json
import os

import pytest

from repro.store import (
    Manifest,
    WalCorruptionError,
    load_manifest,
    load_snapshot,
    save_manifest,
    snapshot_name,
    write_snapshot,
)
from repro.store.manifest import segment_index, segment_name
from repro.store.snapshot import remove_stale

STATE = {"pub": {"schema": "R(A, B)", "dependencies": ["R(A) -> R(B)"],
                 "engine": "worklist", "epoch": 3, "generation": 7}}


class TestSegmentNames:
    def test_roundtrip(self):
        assert segment_name(7) == "wal-00000007.log"
        assert segment_index("wal-00000007.log") == 7

    def test_bad_index(self):
        with pytest.raises(ValueError):
            segment_name(0)

    def test_bad_name(self):
        from repro.store import StoreError
        with pytest.raises(StoreError):
            segment_index("wal-7.log")


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        name = write_snapshot(str(tmp_path), STATE, 42)
        assert name == snapshot_name(42)
        data = load_snapshot(str(tmp_path / name))
        assert data["last_seq"] == 42
        assert data["sessions"] == STATE

    def test_atomic_no_temp_left(self, tmp_path):
        write_snapshot(str(tmp_path), STATE, 1)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_missing_file(self, tmp_path):
        with pytest.raises(WalCorruptionError, match="unreadable"):
            load_snapshot(str(tmp_path / "snapshot-x.json"))

    @pytest.mark.parametrize("mangle", [
        lambda d: d.update(snapshot_version=99),
        lambda d: d.update(last_seq="7"),
        lambda d: d.update(last_seq=-1),
        lambda d: d.update(sessions=[]),
        lambda d: d["sessions"]["pub"].pop("epoch"),
        lambda d: d["sessions"]["pub"].update(dependencies=[1]),
        lambda d: d["sessions"]["pub"].update(extra="key"),
    ])
    def test_malformed(self, tmp_path, mangle):
        name = write_snapshot(str(tmp_path), STATE, 1)
        path = tmp_path / name
        data = json.loads(path.read_text())
        mangle(data)
        path.write_text(json.dumps(data))
        with pytest.raises(WalCorruptionError, match="malformed"):
            load_snapshot(str(path))


class TestManifest:
    def test_fresh_dir(self, tmp_path):
        assert load_manifest(str(tmp_path)) is None

    def test_roundtrip(self, tmp_path):
        manifest = Manifest("snapshot-0000000000000001.json",
                            ("wal-00000001.log", "wal-00000002.log"))
        save_manifest(str(tmp_path), manifest)
        assert load_manifest(str(tmp_path)) == manifest

    def test_no_snapshot(self, tmp_path):
        manifest = Manifest(None, ("wal-00000001.log",))
        save_manifest(str(tmp_path), manifest)
        assert load_manifest(str(tmp_path)) == manifest

    def test_store_files_without_manifest_is_corruption(self, tmp_path):
        (tmp_path / "wal-00000001.log").write_bytes(b"")
        with pytest.raises(WalCorruptionError, match="missing"):
            load_manifest(str(tmp_path))

    def test_unreadable(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(WalCorruptionError, match="unreadable"):
            load_manifest(str(tmp_path))

    @pytest.mark.parametrize("data", [
        {"version": 2, "snapshot": None, "segments": ["wal-00000001.log"]},
        {"version": 1, "snapshot": 7, "segments": ["wal-00000001.log"]},
        {"version": 1, "snapshot": None, "segments": []},
        {"version": 1, "snapshot": None, "segments": "wal-00000001.log"},
        ["not", "an", "object"],
    ])
    def test_malformed(self, tmp_path, data):
        (tmp_path / "manifest.json").write_text(json.dumps(data))
        with pytest.raises(WalCorruptionError):
            load_manifest(str(tmp_path))


class TestRemoveStale:
    def test_sweeps_orphans_keeps_named(self, tmp_path):
        for name in ("wal-00000001.log", "wal-00000002.log",
                     "snapshot-0000000000000001.json",
                     "snapshot-0000000000000002.json",
                     "snapshot-0000000000000002.json.tmp",
                     "manifest.json", "unrelated.txt"):
            (tmp_path / name).write_bytes(b"")
        keep = frozenset({"wal-00000002.log",
                          "snapshot-0000000000000002.json"})
        removed = remove_stale(str(tmp_path), keep)
        assert removed == 3
        left = sorted(os.listdir(tmp_path))
        assert left == ["manifest.json", "snapshot-0000000000000002.json",
                        "unrelated.txt", "wal-00000002.log"]
