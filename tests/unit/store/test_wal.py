"""WAL record format, torn-tail policy and the writer's fsync modes."""

import os

import pytest

from repro.store import (
    WalCorruptionError,
    WalRecord,
    WalWriter,
    decode_record,
    encode_record,
    read_segment,
)
from repro.store.wal import FSYNC_POLICIES


class TestRecordFormat:
    def test_roundtrip(self):
        line = encode_record(7, "add", {"session": "s", "dependency": "d"})
        assert line.endswith(b"\n")
        record = decode_record(line[:-1])
        assert record == WalRecord(7, "add",
                                   {"session": "s", "dependency": "d"})

    def test_canonical_and_unicode(self):
        # sort_keys + compact separators: the same params always encode
        # to the same bytes, and λ survives the trip
        a = encode_record(1, "add", {"b": 1, "a": "λ"})
        b = encode_record(1, "add", {"a": "λ", "b": 1})
        assert a == b

    def test_too_short(self):
        with pytest.raises(WalCorruptionError, match="header"):
            decode_record(b"0001")

    def test_bad_header(self):
        with pytest.raises(WalCorruptionError, match="header"):
            decode_record(b"zzzzzzzz zzzzzzzz {}")

    def test_length_mismatch(self):
        line = encode_record(1, "add", {})[:-1]
        with pytest.raises(WalCorruptionError, match="length"):
            decode_record(line + b"extra")

    def test_checksum_mismatch(self):
        line = bytearray(encode_record(1, "add", {})[:-1])
        line[-1] ^= 0xFF
        with pytest.raises(WalCorruptionError, match="checksum"):
            decode_record(bytes(line))

    def test_payload_not_json(self):
        import zlib
        payload = b"not json"
        line = (f"{len(payload):08x} {zlib.crc32(payload):08x} ".encode()
                + payload)
        with pytest.raises(WalCorruptionError, match="JSON"):
            decode_record(line)

    def test_payload_missing_fields(self):
        import json
        import zlib
        payload = json.dumps({"op": "add"}).encode()
        line = (f"{len(payload):08x} {zlib.crc32(payload):08x} ".encode()
                + payload)
        with pytest.raises(WalCorruptionError, match="seq/op/params"):
            decode_record(line)


class TestReadSegment:
    def _write(self, tmp_path, chunks):
        path = tmp_path / "wal-00000001.log"
        path.write_bytes(b"".join(chunks))
        return str(path)

    def test_clean(self, tmp_path):
        chunks = [encode_record(i, "add", {"i": i}) for i in (1, 2, 3)]
        records, valid, tail = read_segment(self._write(tmp_path, chunks))
        assert [r.seq for r in records] == [1, 2, 3]
        assert valid == sum(len(c) for c in chunks)
        assert tail == b""

    def test_empty(self, tmp_path):
        records, valid, tail = read_segment(self._write(tmp_path, []))
        assert (records, valid, tail) == ([], 0, b"")

    def test_torn_tail_without_newline(self, tmp_path):
        good = encode_record(1, "add", {})
        torn = encode_record(2, "add", {})[: 10]
        path = self._write(tmp_path, [good, torn])
        records, valid, tail = read_segment(path)
        assert [r.seq for r in records] == [1]
        assert valid == len(good)
        assert tail == torn

    def test_full_record_missing_newline_is_torn(self, tmp_path):
        good = encode_record(1, "add", {})
        almost = encode_record(2, "add", {})[:-1]
        records, valid, tail = read_segment(
            self._write(tmp_path, [good, almost]))
        assert [r.seq for r in records] == [1]
        assert tail == almost

    def test_mid_stream_corruption_raises(self, tmp_path):
        good = encode_record(1, "add", {})
        bad = b"garbage garbage {\n"
        good2 = encode_record(2, "add", {})
        with pytest.raises(WalCorruptionError, match="corrupt record"):
            read_segment(self._write(tmp_path, [good, bad, good2]))

    def test_flipped_bit_followed_by_data_raises(self, tmp_path):
        first = bytearray(encode_record(1, "add", {"x": "abc"}))
        first[20] ^= 0x01
        second = encode_record(2, "add", {})
        with pytest.raises(WalCorruptionError):
            read_segment(self._write(tmp_path, [bytes(first), second]))


class TestWalWriter:
    def test_append_and_reread(self, tmp_path):
        path = str(tmp_path / "wal-00000001.log")
        writer = WalWriter(path, fsync="off")
        writer.append(1, "add", {"session": "s", "dependency": "a"})
        writer.append(2, "retract", {"session": "s", "dependency": "a"})
        writer.close()
        records, _, tail = read_segment(path)
        assert [(r.seq, r.op) for r in records] == [(1, "add"),
                                                   (2, "retract")]
        assert tail == b""

    def test_counters_and_sizes(self, tmp_path):
        from collections import Counter
        counters = Counter()
        path = str(tmp_path / "wal-00000001.log")
        writer = WalWriter(path, fsync="always", counters=counters)
        n = writer.append(1, "add", {})
        assert writer.records == 1 and writer.bytes == n
        assert counters["store.appends"] == 1
        assert counters["store.append_bytes"] == n
        assert counters["store.fsyncs"] >= 1
        writer.close()

    def test_interval_policy_skips_most_fsyncs(self, tmp_path):
        from collections import Counter
        counters = Counter()
        writer = WalWriter(str(tmp_path / "wal-00000001.log"),
                           fsync="interval", fsync_interval_s=3600.0,
                           counters=counters)
        for seq in range(1, 50):
            writer.append(seq, "add", {"seq": seq})
        assert counters["store.fsyncs"] == 0
        writer.close()

    def test_reopen_with_start_tallies(self, tmp_path):
        path = str(tmp_path / "wal-00000001.log")
        writer = WalWriter(path, fsync="off")
        writer.append(1, "add", {})
        writer.close()
        size = os.path.getsize(path)
        writer = WalWriter(path, fsync="off", start_records=1,
                           start_bytes=size)
        writer.append(2, "add", {})
        assert writer.records == 2 and writer.bytes > size
        writer.close()
        records, _, _ = read_segment(path)
        assert [r.seq for r in records] == [1, 2]

    def test_bad_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WalWriter(str(tmp_path / "w"), fsync="sometimes")
        assert set(FSYNC_POLICIES) == {"always", "interval", "off"}

    def test_close_is_idempotent(self, tmp_path):
        writer = WalWriter(str(tmp_path / "w"), fsync="off")
        writer.close()
        writer.close()

    def test_spans_validate(self, tmp_path):
        """store.append / store.fsync spans carry the documented attrs."""
        from repro.obs import InMemorySink, Observer, set_observer
        from repro.obs.validate import validate_records

        sink = InMemorySink()
        previous = set_observer(Observer([sink]))
        try:
            writer = WalWriter(str(tmp_path / "w"), fsync="always")
            writer.append(1, "add", {"session": "s"})
            writer.close()
        finally:
            set_observer(previous)
        names = [record["name"] for record in sink.spans]
        assert "store.append" in names and "store.fsync" in names
        validate_records(sink.spans)
