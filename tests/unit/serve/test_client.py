"""Unit tests for the sync and async clients.

The sync :class:`Client` blocks, so its server runs in a background
thread with its own event loop; the async tests share one loop with the
server like tests/unit/serve/test_server.py.
"""

import asyncio
import socket
import threading

import pytest

from repro.serve import (
    AsyncClient,
    Client,
    ErrorCode,
    ReasoningServer,
    ServeConfig,
    ServerError,
)
from repro.serve.protocol import encode, error_response

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
IMPLIED_FD = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
NOT_IMPLIED = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"


class _GatedServer(ReasoningServer):
    def __init__(self, config):
        super().__init__(config)
        self.gate = asyncio.Event()

    async def _execute(self, request):
        if request.params.get("gated"):
            await self.gate.wait()
        return await super()._execute(request)


@pytest.fixture()
def threaded_server():
    """A ReasoningServer on its own thread; yields ``(host, port)``."""
    ready = threading.Event()
    box = {}

    def serve():
        async def main():
            async with ReasoningServer(ServeConfig(idle_ttl=None)) as server:
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                box["address"] = server.address
                ready.set()
                await server._stopped.wait()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "server thread failed to start"
    yield box["address"]
    box["loop"].call_soon_threadsafe(
        lambda: asyncio.ensure_future(box["server"].shutdown()))
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestSyncClient:
    def test_full_session_conversation(self, threaded_server):
        host, port = threaded_server
        with Client.connect(host, port) as client:
            assert client.ping()["pong"] is True
            client.open("pub", SCHEMA, [MVD])
            assert client.implies("pub", IMPLIED_FD) is True
            assert client.implies("pub", NOT_IMPLIED) is False
            assert client.implies_batch(
                "pub", [IMPLIED_FD, NOT_IMPLIED]) == [True, False]
            assert "Person" in client.closure("pub", "Pubcrawl(Person)")
            assert client.basis("pub", "Pubcrawl(Person)")
            client.add("pub", NOT_IMPLIED)
            assert client.implies("pub", NOT_IMPLIED) is True
            client.retract("pub", NOT_IMPLIED)
            metrics = client.metrics("pub")
            assert metrics["sessions"]["pub"]["generation"] == 2
            assert client.close_session("pub") == {"closed": "pub",
                                                   "sigma": 1}

    def test_server_errors_carry_codes(self, threaded_server):
        host, port = threaded_server
        with Client.connect(host, port) as client:
            with pytest.raises(ServerError) as info:
                client.implies("ghost", IMPLIED_FD)
            assert info.value.code == ErrorCode.UNKNOWN_SESSION
            assert "[unknown_session]" in str(info.value)

    def test_two_clients_share_server_state(self, threaded_server):
        host, port = threaded_server
        with Client.connect(host, port) as first:
            first.open("shared", SCHEMA, [MVD])
            with Client.connect(host, port) as second:
                assert second.implies("shared", IMPLIED_FD) is True
            first.close_session("shared")

    def test_id_null_error_raises_instead_of_blocking(self):
        """An ``"id": null`` failure (the server could not decode a
        line) must surface as ServerError for the in-flight request,
        not be skipped until the socket timeout."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def answer_with_idless_failure():
            conn, _ = listener.accept()
            with conn, conn.makefile("rb") as lines:
                lines.readline()  # the client's request
                conn.sendall(encode(error_response(
                    None, ErrorCode.PARSE_ERROR, "line is not UTF-8")))

        thread = threading.Thread(target=answer_with_idless_failure,
                                  daemon=True)
        thread.start()
        try:
            with Client.connect(host, port, timeout=30.0) as client:
                with pytest.raises(ServerError) as info:
                    client.ping()
                assert info.value.code == ErrorCode.PARSE_ERROR
        finally:
            listener.close()
            thread.join(timeout=10)
            assert not thread.is_alive()


class TestAsyncClient:
    def test_responses_match_by_id_not_order(self):
        """A fast request overtakes a gated one on the same connection —
        the read loop must route each response to its own future."""
        config = ServeConfig(request_timeout=None, idle_ttl=None)

        async def scenario():
            async with _GatedServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    slow = asyncio.ensure_future(
                        client.request("ping", gated=True))
                    while server._inflight < 1:
                        await asyncio.sleep(0.005)
                    fast = await client.ping()  # completes while slow waits
                    assert fast["pong"] is True
                    assert not slow.done()
                    server.gate.set()
                    assert (await slow)["pong"] is True

        asyncio.run(scenario())

    def test_pipelined_batch_on_one_connection(self):
        async def scenario():
            async with ReasoningServer(ServeConfig(idle_ttl=None)) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    verdicts = await asyncio.gather(
                        *(client.implies("pub", IMPLIED_FD)
                          for _ in range(16)))
                    assert verdicts == [True] * 16

        asyncio.run(scenario())

    def test_pending_requests_fail_when_server_vanishes(self):
        config = ServeConfig(request_timeout=None, idle_ttl=None,
                             drain_timeout=0.05)

        async def scenario():
            server = _GatedServer(config)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                stuck = asyncio.ensure_future(
                    client.request("ping", gated=True))
                while server._inflight < 1:
                    await asyncio.sleep(0.005)
                await server.shutdown(drain=False)
                with pytest.raises(ConnectionError):
                    await stuck
            finally:
                await client.close()

        asyncio.run(scenario())

    def test_close_fails_outstanding_requests(self):
        config = ServeConfig(request_timeout=None, idle_ttl=None)

        async def scenario():
            async with _GatedServer(config) as server:
                host, port = server.address
                client = await AsyncClient.connect(host, port)
                stuck = asyncio.ensure_future(
                    client.request("ping", gated=True))
                while server._inflight < 1:
                    await asyncio.sleep(0.005)
                await client.close()
                with pytest.raises(ConnectionError):
                    await stuck
                server.gate.set()

        asyncio.run(scenario())


class _StubPeer:
    """A raw in-loop TCP peer whose handler the test scripts —
    for failure shapes a real server never produces on purpose
    (half-written frames, slammed sockets)."""

    def __init__(self, handler):
        self._handler = handler
        self.server = None

    async def __aenter__(self):
        self.server = await asyncio.start_server(
            self._handler, "127.0.0.1", 0)
        return self.server.sockets[0].getsockname()

    async def __aexit__(self, exc_type, exc, tb):
        self.server.close()
        await self.server.wait_closed()


class TestAsyncClientTeardownRace:
    """Regressions for the request/_read_loop teardown race: once the
    connection is failing, every request — pending or newly submitted —
    must reject promptly; none may hang on a future nobody resolves."""

    def test_mid_frame_drop_rejects_pending_request_promptly(self):
        async def handler(reader, writer):
            await reader.readline()  # the request
            writer.write(b'{"v": 1, "id": 1, "ok": true, "resu')  # torn frame
            await writer.drain()
            writer.close()

        async def scenario():
            async with _StubPeer(handler) as (host, port):
                client = await AsyncClient.connect(host, port)
                try:
                    with pytest.raises(ConnectionError):
                        await asyncio.wait_for(client.ping(), timeout=5)
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_request_after_connection_failure_rejects_immediately(self):
        async def handler(reader, writer):
            writer.close()  # slam the door on connect

        async def scenario():
            async with _StubPeer(handler) as (host, port):
                client = await AsyncClient.connect(host, port)
                try:
                    # let the read loop observe the failure and set the mark
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while client._conn_error is None:
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.005)
                    # a fresh request must reject without touching the
                    # socket or registering a future — wait_for guards
                    # against the pre-fix hang
                    with pytest.raises(ConnectionError) as info:
                        await asyncio.wait_for(client.ping(), timeout=5)
                    assert "connection is closed" in str(info.value)
                    assert not client._pending
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_pending_and_new_requests_both_fail_after_drop(self):
        gate = asyncio.Event()

        async def handler(reader, writer):
            await reader.readline()
            await gate.wait()
            writer.write(b'{"v": 1, "id"')  # torn frame, then gone
            await writer.drain()
            writer.close()

        async def scenario():
            async with _StubPeer(handler) as (host, port):
                client = await AsyncClient.connect(host, port)
                try:
                    pending = asyncio.ensure_future(client.ping())
                    await asyncio.sleep(0.01)  # request is on the wire
                    gate.set()
                    with pytest.raises(ConnectionError):
                        await asyncio.wait_for(pending, timeout=5)
                    # the teardown marked the connection: no new future
                    # may ever be parked on this client again
                    with pytest.raises(ConnectionError):
                        await asyncio.wait_for(client.ping(), timeout=5)
                    assert not client._pending
                finally:
                    await client.close()

        asyncio.run(scenario())
