"""Unit tests for the client-side resilience layer.

:class:`RetryPolicy` and :class:`CircuitBreaker` are pure (fake clocks,
seeded RNGs, a Hypothesis property for the backoff bounds); the client
wrappers run against real servers — a flaky subclass that fails the
first *N* executions, and fault plans that drop connections — so the
retry, reconnect and session-replay paths are exercised over the wire.
"""

import asyncio
import contextlib
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    CircuitBreaker,
    CircuitOpenError,
    Client,
    ErrorCode,
    FaultPlan,
    ReasoningServer,
    RetryingAsyncClient,
    RetryingClient,
    RetryPolicy,
    ServeConfig,
    ServerError,
)
from repro.serve.protocol import ProtocolError

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
IMPLIED_FD = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
NOT_IMPLIED = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"

#: Retries resolve in milliseconds so the suite stays fast.
FAST = RetryPolicy(max_retries=6, base_delay=0.001, max_delay=0.005,
                   deadline=30.0)


def run(coroutine):
    return asyncio.run(coroutine)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)

    def test_ceiling_grows_exponentially_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert policy.backoff_ceiling(0) == pytest.approx(0.1)
        assert policy.backoff_ceiling(1) == pytest.approx(0.2)
        assert policy.backoff_ceiling(2) == pytest.approx(0.4)
        assert policy.backoff_ceiling(3) == 0.5  # capped
        assert policy.backoff_ceiling(10) == 0.5

    def test_budget_exhaustion_returns_none(self):
        policy = RetryPolicy(max_retries=2)
        rng = random.Random(0)
        assert policy.next_delay(0, 0.0, rng) is not None
        assert policy.next_delay(1, 0.0, rng) is not None
        assert policy.next_delay(2, 0.0, rng) is None

    def test_zero_budget_never_retries(self):
        policy = RetryPolicy(max_retries=0)
        assert policy.next_delay(0, 0.0, random.Random(0)) is None

    def test_spent_deadline_returns_none(self):
        policy = RetryPolicy(max_retries=8, deadline=1.0)
        assert policy.next_delay(0, 1.0, random.Random(0)) is None
        assert policy.next_delay(0, 2.0, random.Random(0)) is None

    def test_delay_clamped_to_deadline_remainder(self):
        policy = RetryPolicy(max_retries=8, base_delay=10.0, max_delay=10.0,
                             deadline=1.0)

        class MaxRng:
            @staticmethod
            def uniform(low, high):
                return high

        delay = policy.next_delay(0, 0.75, MaxRng())
        assert delay == pytest.approx(0.25)

    def test_unbounded_deadline(self):
        policy = RetryPolicy(max_retries=1, deadline=None)
        assert policy.next_delay(0, 1e9, random.Random(0)) is not None

    @settings(max_examples=200, deadline=None)
    @given(max_retries=st.integers(0, 8),
           base_delay=st.floats(0.0, 0.5),
           multiplier=st.floats(1.0, 4.0),
           max_delay=st.floats(0.001, 2.0),
           deadline=st.floats(0.01, 10.0),
           seed=st.integers(0, 2**32 - 1))
    def test_backoff_is_bounded_jittered_and_deadline_aware(
            self, max_retries, base_delay, multiplier, max_delay, deadline,
            seed):
        """The property the docstring promises: every sleep lies in
        ``[0, min(max_delay, base·multiplier^k)]``, the sequence never
        exceeds the retry budget, and simulated total sleep never
        crosses the deadline."""
        policy = RetryPolicy(max_retries=max_retries, base_delay=base_delay,
                             multiplier=multiplier, max_delay=max_delay,
                             deadline=deadline)
        rng = random.Random(seed)
        elapsed = 0.0
        delays = []
        for attempt in range(max_retries + 1):
            delay = policy.next_delay(attempt, elapsed, rng)
            if delay is None:
                break
            assert 0.0 <= delay <= policy.backoff_ceiling(attempt)
            assert delay <= max_delay
            delays.append(delay)
            elapsed += delay
        else:
            pytest.fail("next_delay never gave up within the retry budget")
        assert len(delays) <= max_retries
        assert elapsed <= deadline + 1e-9


class TestCircuitBreaker:
    def make(self, threshold=2, reset_after=10.0):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 reset_after=reset_after,
                                 clock=lambda: now[0])
        return breaker, now

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after=0.0)

    def test_opens_after_consecutive_failures(self):
        breaker, now = self.make(threshold=2)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        now[0] = 4.0
        assert breaker.retry_after() == pytest.approx(6.0)

    def test_success_resets_the_streak(self):
        breaker, _now = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken in between

    def test_half_open_probe_closes_on_success(self):
        breaker, now = self.make(threshold=1)
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 10.0
        assert breaker.allow()  # the half-open probe slot
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0
        assert breaker.allow()

    def test_half_open_probe_reopens_on_failure(self):
        breaker, now = self.make(threshold=1)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(10.0)  # fresh cooldown
        now[0] = 15.0
        assert not breaker.allow()


# --------------------------------------------------------------------------
# Client wrappers against live servers.
# --------------------------------------------------------------------------


class _FlakyServer(ReasoningServer):
    """Fails the first ``fail_first`` executions of ``fail_op`` (or of
    every op) with a retryable ``overloaded`` — *after* admission, so
    the failure looks exactly like a shed request."""

    def __init__(self, config, *, fail_first=0, fail_op=None):
        super().__init__(config)
        self.remaining = fail_first
        self.fail_op = fail_op

    async def _execute(self, request):
        if self.remaining > 0 and self.fail_op in (None, request.op):
            self.remaining -= 1
            raise ProtocolError(ErrorCode.OVERLOADED, "injected flakiness")
        return await super()._execute(request)


@contextlib.contextmanager
def served(server_factory):
    """Run a server (built by ``server_factory``) on its own thread;
    yields ``(address, server)`` for blocking-client tests."""
    ready = threading.Event()
    box = {}

    def serve():
        async def main():
            async with server_factory() as server:
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                box["address"] = server.address
                ready.set()
                await server._stopped.wait()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "server thread failed to start"
    try:
        yield box["address"], box["server"]
    finally:
        box["loop"].call_soon_threadsafe(
            lambda: asyncio.ensure_future(box["server"].shutdown()))
        thread.join(timeout=10)
        assert not thread.is_alive()


def quiet_config(**overrides):
    return ServeConfig(idle_ttl=None, workers=0, **overrides)


def wrap(host, port, *, policy=FAST, breaker=None, **kwargs):
    if breaker is None:
        breaker = CircuitBreaker(failure_threshold=100)
    return RetryingClient.connect(host, port, policy=policy, breaker=breaker,
                                  rng=random.Random(0), **kwargs)


class TestRetryingClient:
    def test_retries_through_transient_overload(self):
        factory = lambda: _FlakyServer(quiet_config(), fail_first=3,
                                       fail_op="implies")  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), _server):
                with wrap(host, port) as client:
                    client.open("pub", SCHEMA, [MVD])
                    assert client.implies("pub", IMPLIED_FD) is True
                    assert client.counters["client.retry.attempts"] == 3
                    assert "client.retry.exhausted" not in client.counters
                    assert client.breaker.state == "closed"

        scenario()

    def test_zero_budget_surfaces_the_original_error(self):
        factory = lambda: _FlakyServer(quiet_config(), fail_first=10)  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), _server):
                with wrap(host, port,
                          policy=RetryPolicy(max_retries=0)) as client:
                    with pytest.raises(ServerError) as info:
                        client.ping()
                    assert info.value.code == ErrorCode.OVERLOADED
                    assert "injected flakiness" in info.value.message
                    assert client.counters["client.retry.exhausted"] == 1
                    assert "client.retry.attempts" not in client.counters

        scenario()

    def test_non_retryable_errors_raise_immediately(self):
        """unknown_session for a session this wrapper never opened, and
        bad_params, surface unchanged: zero retries, zero breaker
        movement (satellite: non-retryable pinning)."""
        factory = lambda: ReasoningServer(quiet_config())  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), server):
                with wrap(host, port) as client:
                    before = (client.breaker.state, client.breaker.failures)

                    with pytest.raises(ServerError) as info:
                        client.implies("ghost", IMPLIED_FD)
                    assert info.value.code == ErrorCode.UNKNOWN_SESSION

                    client.open("pub", SCHEMA, [MVD])
                    with pytest.raises(ServerError) as info:
                        client.retract("pub", IMPLIED_FD)  # not a member
                    assert info.value.code == ErrorCode.BAD_PARAMS

                    with pytest.raises(ServerError) as info:
                        client.open("pub", SCHEMA)
                    assert info.value.code == ErrorCode.SESSION_EXISTS

                    after = (client.breaker.state, client.breaker.failures)
                    assert before == after == ("closed", 0)
                    assert "client.retry.attempts" not in client.counters
                    assert "client.retry.reopens" not in client.counters
                    # the server saw each request exactly once
                    assert server.counters["serve.requests.retract"] == 1

        scenario()

    def test_circuit_opens_then_fails_fast(self):
        factory = lambda: _FlakyServer(quiet_config(), fail_first=10**6)  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), server):
                breaker = CircuitBreaker(failure_threshold=1,
                                         reset_after=60.0)
                with wrap(host, port, policy=RetryPolicy(max_retries=0),
                          breaker=breaker) as client:
                    with pytest.raises(ServerError):
                        client.ping()
                    assert breaker.state == "open"
                    served_count = server.counters["serve.requests"]
                    with pytest.raises(CircuitOpenError) as info:
                        client.ping()  # fails fast: no socket traffic
                    assert info.value.retry_after > 0
                    assert client.counters["client.retry.circuit_open"] == 1
                    assert server.counters["serve.requests"] == served_count

        scenario()

    def test_reconnects_through_a_dropped_connection(self):
        plan = FaultPlan([{"op": "ping", "kind": "drop", "when": "pre",
                           "every": 1, "times": 1}])
        factory = lambda: ReasoningServer(quiet_config(fault_plan=plan))  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), _server):
                with wrap(host, port) as client:
                    assert client.ping()["pong"] is True
                    assert client.counters["client.retry.reconnects"] == 1
                    assert client.counters["client.retry.attempts"] == 1

        scenario()

    def test_replays_a_session_the_server_forgot(self):
        factory = lambda: ReasoningServer(quiet_config())  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), server):
                with wrap(host, port) as client:
                    client.open("pub", SCHEMA, [MVD])
                    client.add("pub", NOT_IMPLIED)
                    assert client.tracked_sessions() == ("pub",)

                    # the server forgets the session behind our back
                    with Client.connect(host, port) as saboteur:
                        saboteur.close_session("pub")

                    # healed transparently: re-open + replay, then answer
                    assert client.implies("pub", NOT_IMPLIED) is True
                    assert client.counters["client.retry.reopens"] == 1
                    # recovery is not a retry
                    assert "client.retry.attempts" not in client.counters
                    metrics = client.metrics("pub")
                    assert metrics["sessions"]["pub"]["sigma"] == 2

        scenario()

    def test_replay_preserves_retractions(self):
        factory = lambda: ReasoningServer(quiet_config())  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), _server):
                with wrap(host, port) as client:
                    client.open("pub", SCHEMA, [MVD])
                    client.add("pub", NOT_IMPLIED)
                    client.retract("pub", NOT_IMPLIED)
                    with Client.connect(host, port) as saboteur:
                        saboteur.close_session("pub")
                    assert client.implies("pub", NOT_IMPLIED) is False
                    assert client.implies("pub", IMPLIED_FD) is True
                    assert client.metrics("pub")["sessions"]["pub"]["sigma"] == 1

        scenario()

    def test_closed_sessions_are_not_replayed(self):
        factory = lambda: ReasoningServer(quiet_config())  # noqa: E731

        def scenario():
            with served(factory) as ((host, port), _server):
                with wrap(host, port) as client:
                    client.open("pub", SCHEMA, [MVD])
                    client.close_session("pub")
                    assert client.tracked_sessions() == ()
                    with pytest.raises(ServerError) as info:
                        client.implies("pub", IMPLIED_FD)
                    assert info.value.code == ErrorCode.UNKNOWN_SESSION
                    assert "client.retry.reopens" not in client.counters

        scenario()


class TestRetryingAsyncClient:
    def test_retries_through_transient_overload(self):
        async def scenario():
            config = quiet_config()
            async with _FlakyServer(config, fail_first=2,
                                    fail_op="implies") as server:
                host, port = server.address
                client = await RetryingAsyncClient.connect(
                    host, port, policy=FAST,
                    breaker=CircuitBreaker(failure_threshold=100),
                    rng=random.Random(0))
                try:
                    await client.open("pub", SCHEMA, [MVD])
                    assert await client.implies("pub", IMPLIED_FD) is True
                    assert client.counters["client.retry.attempts"] == 2
                finally:
                    await client.close()

        run(scenario())

    def test_reconnects_through_a_dropped_connection(self):
        plan = FaultPlan([{"op": "ping", "kind": "drop", "when": "pre",
                           "every": 1, "times": 1}])

        async def scenario():
            async with ReasoningServer(quiet_config(fault_plan=plan)) as server:
                host, port = server.address
                client = await RetryingAsyncClient.connect(
                    host, port, policy=FAST,
                    breaker=CircuitBreaker(failure_threshold=100),
                    rng=random.Random(0))
                try:
                    assert (await client.ping())["pong"] is True
                    assert client.counters["client.retry.reconnects"] == 1
                finally:
                    await client.close()

        run(scenario())

    def test_replays_a_session_the_server_forgot(self):
        async def scenario():
            async with ReasoningServer(quiet_config()) as server:
                host, port = server.address
                client = await RetryingAsyncClient.connect(
                    host, port, policy=FAST,
                    breaker=CircuitBreaker(failure_threshold=100),
                    rng=random.Random(0))
                try:
                    await client.open("pub", SCHEMA, [MVD])
                    await client.add("pub", NOT_IMPLIED)
                    server.sessions.close("pub")  # forgotten server-side
                    assert await client.implies("pub", NOT_IMPLIED) is True
                    assert client.counters["client.retry.reopens"] == 1
                finally:
                    await client.close()

        run(scenario())

    def test_non_retryable_errors_raise_immediately(self):
        async def scenario():
            async with ReasoningServer(quiet_config()) as server:
                host, port = server.address
                client = await RetryingAsyncClient.connect(
                    host, port, policy=FAST,
                    breaker=CircuitBreaker(failure_threshold=100),
                    rng=random.Random(0))
                try:
                    with pytest.raises(ServerError) as info:
                        await client.implies("ghost", IMPLIED_FD)
                    assert info.value.code == ErrorCode.UNKNOWN_SESSION
                    assert client.breaker.failures == 0
                    assert "client.retry.attempts" not in client.counters
                    assert server.counters["serve.requests.implies"] == 1
                finally:
                    await client.close()

        run(scenario())
