"""Unit tests for the asyncio reasoning server.

Each test runs server and client inside one ``asyncio.run`` so the
suite needs no pytest-asyncio plugin and can poke at server internals
(inflight counts, gates) deterministically from the same event loop.
"""

import asyncio
import json

import pytest

from repro.serve import (
    AsyncClient,
    ErrorCode,
    ReasoningServer,
    ServeConfig,
    ServerError,
    SessionManager,
)
from repro.serve.protocol import ProtocolError

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
IMPLIED_FD = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
IMPLIED_MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])"
NOT_IMPLIED = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"


def run(coroutine):
    return asyncio.run(coroutine)


class TestSessionManager:
    """Pure bookkeeping — no asyncio, explicit clocks."""

    def test_open_get_close(self):
        manager = SessionManager(max_sessions=4)
        manager.open("a", SCHEMA, [MVD])
        assert "a" in manager and len(manager) == 1
        assert manager.get("a").session.root is manager.peek("a").session.root
        closed = manager.close("a")
        assert closed.name == "a"
        assert "a" not in manager

    def test_open_twice_requires_replace(self):
        manager = SessionManager(max_sessions=4)
        manager.open("a", SCHEMA)
        with pytest.raises(ProtocolError) as info:
            manager.open("a", SCHEMA)
        assert info.value.code == ErrorCode.SESSION_EXISTS
        replaced = manager.open("a", SCHEMA, [MVD], replace=True)
        assert len(replaced.session) == 1

    def test_bad_schema_is_bad_params(self):
        manager = SessionManager(max_sessions=4)
        with pytest.raises(ProtocolError) as info:
            manager.open("a", "R(((")
        assert info.value.code == ErrorCode.BAD_PARAMS
        assert "a" not in manager

    def test_unknown_session_everywhere(self):
        manager = SessionManager(max_sessions=4)
        for call in (manager.get, manager.peek, manager.close):
            with pytest.raises(ProtocolError) as info:
                call("ghost")
            assert info.value.code == ErrorCode.UNKNOWN_SESSION

    def test_lru_eviction_prefers_stale_sessions(self):
        manager = SessionManager(max_sessions=2)
        manager.open("old", SCHEMA, now=0.0)
        manager.open("warm", SCHEMA, now=1.0)
        manager.get("old", now=2.0)  # touch: "warm" is now the LRU victim
        manager.open("new", SCHEMA, now=3.0)
        assert manager.names() == ("old", "new")
        assert manager.counters["serve.evictions.lru"] == 1

    def test_peek_does_not_touch(self):
        manager = SessionManager(max_sessions=2)
        manager.open("a", SCHEMA, now=0.0)
        manager.open("b", SCHEMA, now=1.0)
        manager.peek("a")
        manager.open("c", SCHEMA, now=2.0)  # evicts "a", not "b"
        assert manager.names() == ("b", "c")

    def test_idle_ttl_sweep(self):
        manager = SessionManager(max_sessions=8, idle_ttl=10.0)
        manager.open("stale", SCHEMA, now=0.0)
        manager.open("fresh", SCHEMA, now=0.0)
        manager.get("fresh", now=95.0)
        assert manager.sweep_idle(now=100.0) == 1
        assert manager.names() == ("fresh",)
        assert manager.counters["serve.evictions.idle"] == 1

    def test_no_ttl_never_sweeps(self):
        manager = SessionManager(max_sessions=8, idle_ttl=None)
        manager.open("a", SCHEMA, now=0.0)
        assert manager.sweep_idle(now=1e9) == 0

    def test_max_sessions_must_be_positive(self):
        with pytest.raises(ValueError):
            SessionManager(max_sessions=0)

    def test_reopened_name_gets_a_fresh_epoch(self):
        """close+open and replace both mint new epochs — the worker-side
        table memo keys on the epoch, so a recycled name must never
        look like the session it replaced."""
        manager = SessionManager(max_sessions=4)
        first = manager.open("a", SCHEMA, [MVD])
        manager.close("a")
        second = manager.open("a", SCHEMA)
        assert second.epoch != first.epoch
        assert second.generation == 0  # same (name, generation) as first had
        replaced = manager.open("a", SCHEMA, replace=True)
        assert replaced.epoch not in {first.epoch, second.epoch}
        assert manager.is_current(replaced)
        assert not manager.is_current(second)
        assert not manager.is_current(first)


class TestServerOps:
    """The full op surface over a real (in-loop) TCP connection."""

    def test_lifecycle_of_one_session(self):
        async def scenario():
            async with ReasoningServer(ServeConfig()) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    pong = await client.ping()
                    assert pong["pong"] is True and pong["sessions"] == 0

                    opened = await client.open("pub", SCHEMA, [MVD])
                    assert opened == {"name": "pub", "sigma": 1,
                                      "engine": opened["engine"]}

                    assert await client.implies("pub", IMPLIED_FD) is True
                    assert await client.implies("pub", NOT_IMPLIED) is False
                    verdicts = await client.implies_batch(
                        "pub", [IMPLIED_FD, IMPLIED_MVD, NOT_IMPLIED])
                    assert verdicts == [True, True, False]

                    closure = await client.closure("pub", "Pubcrawl(Person)")
                    assert "Person" in closure
                    basis = await client.basis("pub", "Pubcrawl(Person)")
                    assert len(basis) >= 2

                    added = await client.add("pub", NOT_IMPLIED)
                    assert added["added"] is True and added["sigma"] == 2
                    assert await client.implies("pub", NOT_IMPLIED) is True

                    retracted = await client.retract("pub", NOT_IMPLIED)
                    assert retracted["sigma"] == 1
                    assert await client.implies("pub", NOT_IMPLIED) is False

                    metrics = await client.metrics()
                    assert metrics["server"]["sessions"] == 1
                    assert metrics["sessions"]["pub"]["generation"] == 2
                    assert metrics["sessions"]["pub"]["sigma"] == 1

                    closed = await client.close_session("pub")
                    assert closed == {"closed": "pub", "sigma": 1}
                    assert (await client.ping())["sessions"] == 0

        run(scenario())

    def test_typed_errors_over_the_wire(self):
        async def scenario():
            async with ReasoningServer(ServeConfig()) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    with pytest.raises(ServerError) as info:
                        await client.implies("ghost", IMPLIED_FD)
                    assert info.value.code == ErrorCode.UNKNOWN_SESSION
                    assert not info.value.retryable

                    await client.open("pub", SCHEMA, [MVD])
                    with pytest.raises(ServerError) as info:
                        await client.implies("pub", "Pubcrawl(Nope) -> λ")
                    assert info.value.code == ErrorCode.BAD_PARAMS

                    with pytest.raises(ServerError) as info:
                        await client.retract("pub", IMPLIED_FD)  # not a member
                    assert info.value.code == ErrorCode.BAD_PARAMS

                    with pytest.raises(ServerError) as info:
                        await client.open("pub", SCHEMA)
                    assert info.value.code == ErrorCode.SESSION_EXISTS

                    with pytest.raises(ServerError) as info:
                        await client.request("open", name="", schema=SCHEMA)
                    assert info.value.code == ErrorCode.BAD_PARAMS

        run(scenario())

    def test_malformed_lines_get_typed_responses(self):
        async def scenario():
            async with ReasoningServer(ServeConfig()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(b"this is not json\n")
                    response = json.loads(await reader.readline())
                    assert response["ok"] is False
                    assert response["error"]["code"] == ErrorCode.PARSE_ERROR
                    assert response["id"] is None

                    # id recovered from a structurally broken request
                    writer.write(b'{"v": 99, "id": 42, "op": "ping"}\n')
                    response = json.loads(await reader.readline())
                    assert response["id"] == 42
                    assert (response["error"]["code"]
                            == ErrorCode.INVALID_REQUEST)

                    writer.write(
                        b'{"v": 1, "id": 3, "op": "conjure", "params": {}}\n')
                    response = json.loads(await reader.readline())
                    assert response["error"]["code"] == ErrorCode.UNKNOWN_OP
                finally:
                    writer.close()

        run(scenario())

    def test_blank_lines_are_ignored(self):
        async def scenario():
            async with ReasoningServer(ServeConfig()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(b"\n \n")
                    writer.write(b'{"v": 1, "id": 1, "op": "ping"}\n')
                    response = json.loads(await reader.readline())
                    assert response["ok"] is True
                finally:
                    writer.close()

        run(scenario())


class _GatedServer(ReasoningServer):
    """Requests with ``params.gated`` block until the test opens the
    gate — the deterministic stand-in for a slow closure."""

    def __init__(self, config):
        super().__init__(config)
        self.gate = asyncio.Event()

    async def _execute(self, request):
        if request.params.get("gated"):
            await self.gate.wait()
        return await super()._execute(request)


class TestBackpressureAndDeadlines:
    def test_flooded_connection_gets_typed_overloads(self):
        config = ServeConfig(max_inflight=2, max_pending_per_conn=2,
                             request_timeout=None, idle_ttl=None)

        async def scenario():
            async with _GatedServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    stuck = [asyncio.ensure_future(
                        client.request("ping", gated=True))
                        for _ in range(2)]
                    while server._inflight < 2:
                        await asyncio.sleep(0.005)

                    with pytest.raises(ServerError) as info:
                        await client.request("ping")
                    assert info.value.code == ErrorCode.OVERLOADED
                    assert info.value.retryable
                    assert server.counters["serve.overloads"] == 1

                    server.gate.set()  # drain the gated pair
                    for result in await asyncio.gather(*stuck):
                        assert result["pong"] is True
                    # capacity is back
                    assert (await client.request("ping"))["pong"] is True

        run(scenario())

    def test_slow_request_times_out_with_typed_error(self):
        config = ServeConfig(request_timeout=0.05, idle_ttl=None)

        async def scenario():
            async with _GatedServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    with pytest.raises(ServerError) as info:
                        await client.request("ping", gated=True)
                    assert info.value.code == ErrorCode.TIMEOUT
                    assert info.value.retryable
                    assert server.counters["serve.timeouts"] == 1
                    # the connection survives a timed-out request
                    server.gate.set()
                    assert (await client.ping())["pong"] is True

        run(scenario())


class TestGracefulShutdown:
    def test_drain_delivers_inflight_responses(self):
        config = ServeConfig(request_timeout=None, idle_ttl=None,
                             drain_timeout=10.0)

        async def scenario():
            server = _GatedServer(config)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                inflight = asyncio.ensure_future(
                    client.request("ping", gated=True))
                while server._inflight < 1:
                    await asyncio.sleep(0.005)

                stopping = asyncio.ensure_future(server.shutdown())
                while not server._draining:
                    await asyncio.sleep(0.005)

                # new work is refused while draining...
                with pytest.raises(ServerError) as info:
                    await client.request("ping")
                assert info.value.code == ErrorCode.SHUTTING_DOWN

                # ...but admitted work completes and its response lands
                server.gate.set()
                assert (await inflight)["pong"] is True
                await stopping
            finally:
                await client.close()
                await server.shutdown()

        run(scenario())

    def test_shutdown_is_idempotent_and_unstarted_safe(self):
        async def scenario():
            server = ReasoningServer(ServeConfig())
            await server.shutdown()  # never started: no-op
            await server.start()
            await asyncio.gather(server.shutdown(), server.shutdown())
            assert server._stopped is not None and server._stopped.is_set()

        run(scenario())

    def test_serve_forever_returns_after_shutdown(self):
        async def scenario():
            server = ReasoningServer(ServeConfig(idle_ttl=None))
            await server.start()
            forever = asyncio.ensure_future(
                server.serve_forever(handle_signals=False))
            await asyncio.sleep(0.01)
            assert not forever.done()
            await server.shutdown()
            await asyncio.wait_for(forever, timeout=5)

        run(scenario())


class TestIdleSweeper:
    def test_idle_sessions_are_swept_while_serving(self):
        config = ServeConfig(idle_ttl=0.05, sweep_interval=0.01)

        async def scenario():
            async with ReasoningServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while "pub" in server.sessions:
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.02)
                    assert server.counters["serve.evictions.idle"] == 1
                    with pytest.raises(ServerError) as info:
                        await client.implies("pub", IMPLIED_FD)
                    assert info.value.code == ErrorCode.UNKNOWN_SESSION

        run(scenario())


class TestWorkerOffload:
    def test_pool_seeds_the_session_cache(self):
        config = ServeConfig(workers=1, idle_ttl=None)

        async def scenario():
            async with ReasoningServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    assert await client.implies("pub", IMPLIED_FD) is True
                    dispatches = server.counters["serve.pool_dispatches"]
                    assert dispatches >= 1

                    # same LHS again: answered from the seeded cache
                    assert await client.implies("pub", IMPLIED_MVD) is True
                    assert (server.counters["serve.pool_dispatches"]
                            == dispatches)
                    metrics = await client.metrics("pub")
                    assert metrics["sessions"]["pub"]["computed"] >= 1
                    assert metrics["sessions"]["pub"]["hits"] >= 1

                    # Σ edits bump the generation; later closures still work
                    await client.add("pub", NOT_IMPLIED)
                    assert await client.implies("pub", NOT_IMPLIED) is True

        run(scenario())

    def test_offload_matches_inline_verdicts(self):
        queries = [IMPLIED_FD, IMPLIED_MVD, NOT_IMPLIED,
                   "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
                   "λ -> Pubcrawl(Visit[λ])"]

        async def verdicts(workers):
            config = ServeConfig(workers=workers, idle_ttl=None)
            async with ReasoningServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    return await client.implies_batch("pub", queries)

        assert run(verdicts(0)) == run(verdicts(1))

    def test_reopened_name_never_reuses_stale_worker_tables(self):
        """A name re-opened after close (or replace) restarts at
        generation 0; the worker memo must key on the session epoch, or
        the pool would answer with the *previous* session's Σ tables."""
        config = ServeConfig(workers=1, idle_ttl=None)

        async def scenario():
            async with ReasoningServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    assert await client.implies("pub", IMPLIED_FD) is True
                    await client.close_session("pub")

                    # Same name, same schema, empty Σ: a (name,
                    # generation)-keyed memo would hit the old tables
                    # and wrongly answer True.
                    await client.open("pub", SCHEMA, [])
                    assert await client.implies("pub", IMPLIED_FD) is False

                    # replace=True is the same trap without a close.
                    await client.open("pub", SCHEMA, [MVD], replace=True)
                    assert await client.implies("pub", IMPLIED_FD) is True

        run(scenario())

    def test_pool_is_released_on_shutdown(self):
        config = ServeConfig(workers=1, idle_ttl=None)

        async def scenario():
            async with ReasoningServer(config) as server:
                assert server._pool is not None
            assert server._pool is None

        run(scenario())
