"""Unit tests for the wire protocol: framing, validation, error codes."""

import json

import pytest

from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    RETRYABLE,
    ErrorCode,
    ProtocolError,
    Request,
    decode_request,
    decode_response,
    encode,
    error_response,
    ok_response,
)


class TestFraming:
    def test_encode_is_one_compact_utf8_line(self):
        line = encode({"v": 1, "id": 1, "op": "closure",
                       "params": {"x": "R(λ)"}})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert b" " not in line  # compact separators
        assert "λ" in line.decode("utf-8")  # ensure_ascii off

    def test_request_round_trips(self):
        request = Request(7, "implies",
                          {"session": "s", "dependency": "R(A) -> R(B)"})
        assert decode_request(encode(request.as_dict())) == request

    def test_string_ids_survive(self):
        request = decode_request(
            '{"v": 1, "id": "req-1", "op": "ping"}')
        assert request.id == "req-1"
        assert request.params == {}


class TestRequestValidation:
    def _code(self, line):
        with pytest.raises(ProtocolError) as info:
            decode_request(line)
        return info.value.code

    def test_not_json(self):
        assert self._code(b"not json\n") == ErrorCode.PARSE_ERROR

    def test_not_an_object(self):
        assert self._code(b"[1, 2]\n") == ErrorCode.PARSE_ERROR

    def test_not_utf8(self):
        assert self._code(b"\xff\xfe\n") == ErrorCode.PARSE_ERROR

    def test_wrong_version(self):
        line = json.dumps({"v": 99, "id": 1, "op": "ping"})
        assert self._code(line) == ErrorCode.INVALID_REQUEST

    def test_missing_version(self):
        line = json.dumps({"id": 1, "op": "ping"})
        assert self._code(line) == ErrorCode.INVALID_REQUEST

    def test_boolean_version_is_rejected(self):
        # True == 1 in Python; the version gate must not accept it
        line = json.dumps({"v": True, "id": 1, "op": "ping"})
        assert self._code(line) == ErrorCode.INVALID_REQUEST

    @pytest.mark.parametrize("bad_id", [None, True, 1.5, [1], {}])
    def test_bad_ids(self, bad_id):
        line = json.dumps({"v": PROTOCOL_VERSION, "id": bad_id, "op": "ping"})
        assert self._code(line) == ErrorCode.INVALID_REQUEST

    def test_unknown_op(self):
        line = json.dumps({"v": PROTOCOL_VERSION, "id": 1, "op": "frobnicate"})
        assert self._code(line) == ErrorCode.UNKNOWN_OP

    def test_non_string_op(self):
        line = json.dumps({"v": PROTOCOL_VERSION, "id": 1, "op": 7})
        assert self._code(line) == ErrorCode.INVALID_REQUEST

    def test_non_object_params(self):
        line = json.dumps({"v": PROTOCOL_VERSION, "id": 1, "op": "ping",
                           "params": [1]})
        assert self._code(line) == ErrorCode.INVALID_REQUEST

    def test_every_documented_op_is_accepted(self):
        for op in OPS:
            request = decode_request(json.dumps(
                {"v": PROTOCOL_VERSION, "id": 1, "op": op}))
            assert request.op == op


class TestResponses:
    def test_ok_response_shape(self):
        message = ok_response(7, {"implied": True})
        assert message == {"v": PROTOCOL_VERSION, "id": 7, "ok": True,
                           "result": {"implied": True}}
        assert decode_response(encode(message)) == message

    def test_error_response_shape(self):
        message = error_response(7, ErrorCode.UNKNOWN_SESSION, "no session")
        assert message["ok"] is False
        assert message["error"]["code"] == "unknown_session"

    def test_unrecoverable_id_is_null(self):
        message = error_response(None, ErrorCode.PARSE_ERROR, "bad line")
        assert message["id"] is None

    def test_response_must_carry_id_and_ok(self):
        with pytest.raises(ProtocolError):
            decode_response(b'{"v": 1, "id": 7}\n')

    def test_retryable_codes(self):
        assert RETRYABLE == {ErrorCode.TIMEOUT, ErrorCode.OVERLOADED}
