"""Unit tests for deterministic fault injection, the ``health`` op and
cold-work load shedding.

The pure parts (rules, plans, the injector's trigger/determinism
semantics) run without a server; the integration half drives a real
in-loop :class:`ReasoningServer` with a fault plan and checks each
fault kind produces exactly its documented wire behaviour.
"""

import asyncio
import json

import pytest

from repro.serve import (
    AsyncClient,
    ErrorCode,
    FaultInjector,
    FaultPlan,
    FaultRule,
    ReasoningServer,
    ServeConfig,
    ServerError,
)

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
IMPLIED_FD = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
IMPLIED_MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])"


def run(coroutine):
    return asyncio.run(coroutine)


def plan_of(*rules, seed=0):
    return FaultPlan(rules, seed=seed)


class TestFaultRule:
    def test_validation_rejects_malformed_rules(self):
        bad = [
            dict(op="conjure", kind="delay", seconds=0.1),  # unknown op
            dict(kind="mangle"),                            # unknown kind
            dict(kind="error", code="bad_params"),          # not retryable
            dict(kind="error"),                             # code required
            dict(kind="delay"),                             # seconds required
            dict(kind="delay", seconds=0.0),                # must be > 0
            dict(kind="error", code="timeout", seconds=1.0),  # wrong field
            dict(kind="delay", seconds=0.1, code="timeout"),  # wrong field
            dict(kind="drop", when="sideways"),             # bad when
            dict(kind="drop", when="pre", p=0.5, every=2),  # p xor every
            dict(kind="drop", when="pre", p=0.0),           # p out of range
            dict(kind="drop", when="pre", p=1.5),           # p out of range
            dict(kind="drop", when="pre", every=0),         # every >= 1
            dict(kind="drop", when="pre", times=0),         # times >= 1
            dict(kind="drop", when="pre", after=-1),        # after >= 0
        ]
        for spec in bad:
            with pytest.raises(ValueError):
                FaultRule(**spec)

    def test_from_dict_rejects_unknown_keys_and_missing_kind(self):
        with pytest.raises(ValueError, match="unknown fault rule keys"):
            FaultRule.from_dict({"kind": "delay", "seconds": 0.1,
                                 "colour": "red"})
        with pytest.raises(ValueError, match="needs a 'kind'"):
            FaultRule.from_dict({"op": "ping"})
        with pytest.raises(ValueError, match="must be a JSON object"):
            FaultRule.from_dict(["kind", "delay"])

    def test_round_trip_through_dict(self):
        specs = [
            {"op": "implies", "kind": "error", "code": "overloaded", "p": 0.25},
            {"op": "*", "kind": "delay", "seconds": 0.01, "every": 7},
            {"op": "closure", "kind": "truncate", "every": 3, "times": 5},
            {"op": "ping", "kind": "drop", "when": "post", "after": 2},
        ]
        for spec in specs:
            rule = FaultRule.from_dict(spec)
            assert rule.as_dict() == spec
            assert FaultRule.from_dict(rule.as_dict()).as_dict() == spec


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan.from_json(json.dumps({
            "seed": 42,
            "rules": [{"op": "implies", "kind": "error",
                       "code": "overloaded", "p": 0.1},
                      {"op": "*", "kind": "delay",
                       "seconds": 0.005, "every": 7}],
        }))
        assert plan.seed == 42 and len(plan.rules) == 2
        assert FaultPlan.from_json(plan.to_json()).to_json() == plan.to_json()

    def test_needs_at_least_one_rule(self):
        with pytest.raises(ValueError, match="at least one rule"):
            FaultPlan.from_json('{"seed": 1, "rules": []}')

    def test_rejects_non_json_and_wrong_shapes(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="object with 'rules'"):
            FaultPlan.from_json('{"seed": 1}')
        with pytest.raises(ValueError, match="object with 'rules'"):
            FaultPlan.from_json('[1, 2]')

    def test_load_inline_json_or_file(self, tmp_path):
        spec = '{"seed": 3, "rules": [{"kind": "drop", "when": "pre"}]}'
        inline = FaultPlan.load(spec)
        assert inline.seed == 3
        path = tmp_path / "plan.json"
        path.write_text(spec, encoding="utf-8")
        assert FaultPlan.load(str(path)).to_json() == inline.to_json()
        with pytest.raises(ValueError, match="not found"):
            FaultPlan.load(str(tmp_path / "missing.json"))


class TestInjectorSemantics:
    def test_every_fires_on_each_kth_match(self):
        injector = FaultInjector(plan_of(
            {"op": "ping", "kind": "drop", "when": "pre", "every": 3}))
        decisions = [injector.decide("ping") is not None for _ in range(9)]
        assert decisions == [False, False, True] * 3

    def test_after_skips_then_every_counts_from_there(self):
        injector = FaultInjector(plan_of(
            {"op": "ping", "kind": "drop", "when": "pre",
             "every": 2, "after": 3}))
        decisions = [injector.decide("ping") is not None for _ in range(9)]
        # matches 1..3 skipped; then fires on the 2nd, 4th, 6th match past
        # the skip window (matched - after ≡ 0 mod 2)
        assert decisions == [False, False, False,
                             False, True, False, True, False, True]

    def test_times_caps_total_firings(self):
        injector = FaultInjector(plan_of(
            {"op": "ping", "kind": "drop", "when": "pre",
             "every": 1, "times": 2}))
        decisions = [injector.decide("ping") is not None for _ in range(5)]
        assert decisions == [True, True, False, False, False]

    def test_non_matching_ops_do_not_advance_counters(self):
        injector = FaultInjector(plan_of(
            {"op": "implies", "kind": "error", "code": "timeout", "every": 2}))
        assert injector.decide("implies") is None
        for _ in range(10):
            assert injector.decide("ping") is None
        action = injector.decide("implies")  # 2nd *matching* request
        assert action is not None and action.code == "timeout"

    def test_same_seed_same_decisions(self):
        spec = {"op": "*", "kind": "error", "code": "overloaded", "p": 0.35}
        ops = ["ping", "implies", "add", "closure"] * 25
        injector = FaultInjector(plan_of(spec, seed=9))
        first = [injector.decide(op) is not None for op in ops]
        # rebuild from JSON to prove the firing pattern survives the wire
        rebuilt = FaultInjector(
            FaultPlan.from_json(plan_of(spec, seed=9).to_json()))
        second = [rebuilt.decide(op) is not None for op in ops]
        assert first == second
        assert any(first) and not all(first)  # p actually discriminates

    def test_different_seed_different_decisions(self):
        spec = {"op": "*", "kind": "error", "code": "overloaded", "p": 0.5}
        one, two = (FaultInjector(plan_of(spec, seed=seed))
                    for seed in (1, 2))
        a = [one.decide("ping") is not None for _ in range(64)]
        b = [two.decide("ping") is not None for _ in range(64)]
        assert a != b

    def test_rule_streams_are_independent(self):
        """A rule's stream is keyed on (plan seed, rule index), so
        appending rules behind never perturbs the rules in front — and
        first-fire-wins masks later rules without stalling their
        counters or streams."""
        lead = {"op": "ping", "kind": "error", "code": "timeout", "p": 0.4}
        alone = FaultInjector(plan_of(lead, seed=5))
        lone_fires = [alone.decide("ping") is not None for _ in range(80)]

        extra = {"op": "ping", "kind": "delay", "seconds": 0.001, "p": 0.4}
        stacked = FaultInjector(plan_of(lead, extra, seed=5))
        stacked_fires = []
        for _ in range(80):
            action = stacked.decide("ping")
            stacked_fires.append(action is not None
                                 and action.kind == "error")
        assert stacked_fires == lone_fires
        # the appended rule kept matching (and firing) behind the mask
        assert stacked._states[1].matched == 80
        assert stacked._states[1].fired > 0

    def test_first_fire_wins_and_is_logged(self):
        injector = FaultInjector(plan_of(
            {"op": "ping", "kind": "delay", "seconds": 0.001, "every": 1},
            {"op": "ping", "kind": "drop", "when": "pre", "every": 1}))
        action = injector.decide("ping")
        assert action.kind == "delay" and action.rule == 0
        assert injector.injected == [("ping", "delay")]
        assert injector.stats() == {"injected": 1, "delay": 1}


# --------------------------------------------------------------------------
# Wire behaviour of each fault kind against a live in-loop server.
# --------------------------------------------------------------------------


def _server(plan=None, **overrides):
    config = ServeConfig(idle_ttl=None, workers=0, fault_plan=plan,
                         **overrides)
    return ReasoningServer(config)


class TestInjectedFaultsOnTheWire:
    def test_error_fault_answers_retryably_without_executing(self):
        plan = plan_of({"op": "add", "kind": "error", "code": "overloaded",
                        "every": 1, "times": 1})

        async def scenario():
            async with _server(plan) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    with pytest.raises(ServerError) as info:
                        await client.add("pub", IMPLIED_FD)
                    assert info.value.code == ErrorCode.OVERLOADED
                    assert info.value.retryable
                    assert "injected fault" in info.value.message
                    # the faulted add never executed: Σ is untouched and
                    # the op was never counted as a served request
                    metrics = await client.metrics("pub")
                    assert metrics["sessions"]["pub"]["sigma"] == 1
                    assert server.counters["serve.requests.add"] == 0
                    assert server.counters["serve.fault.injected"] == 1
                    assert server.counters["serve.fault.error"] == 1
                    # the rule is spent; the retry lands
                    added = await client.add("pub", IMPLIED_FD)
                    assert added["added"] is True

        run(scenario())

    def test_delay_fault_slows_but_still_answers(self):
        plan = plan_of({"op": "ping", "kind": "delay", "seconds": 0.02,
                        "every": 1, "times": 1})

        async def scenario():
            async with _server(plan) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    loop = asyncio.get_running_loop()
                    started = loop.time()
                    assert (await client.ping())["pong"] is True
                    assert loop.time() - started >= 0.02
                    assert server.counters["serve.fault.delay"] == 1

        run(scenario())

    def test_drop_pre_closes_before_executing(self):
        plan = plan_of({"op": "implies", "kind": "drop", "when": "pre",
                        "every": 1, "times": 1})

        async def scenario():
            async with _server(plan) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    with pytest.raises(ConnectionError):
                        await client.implies("pub", IMPLIED_FD)
                    assert server.counters["serve.requests.implies"] == 0
                    assert server.counters["serve.fault.drop"] == 1
                # a fresh connection works; the session survived
                async with await AsyncClient.connect(host, port) as client:
                    assert await client.implies("pub", IMPLIED_FD) is True

        run(scenario())

    def test_truncate_tears_the_response_frame(self):
        plan = plan_of({"op": "closure", "kind": "truncate",
                        "every": 1, "times": 1})

        async def scenario():
            async with _server(plan) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    with pytest.raises(ConnectionError):
                        await client.closure("pub", "Pubcrawl(Person)")
                    # truncate executes first — the request was served,
                    # only its response frame was torn
                    assert server.counters["serve.requests.closure"] == 1
                    assert server.counters["serve.fault.truncate"] == 1
                async with await AsyncClient.connect(host, port) as client:
                    closure = await client.closure("pub", "Pubcrawl(Person)")
                    assert "Person" in closure

        run(scenario())

    def test_drop_post_delivers_then_closes(self):
        plan = plan_of({"op": "add", "kind": "drop", "when": "post",
                        "every": 1, "times": 1})

        async def scenario():
            async with _server(plan) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    # the faulted request itself succeeds end-to-end...
                    added = await client.add("pub", IMPLIED_MVD)
                    assert added["added"] is True
                    assert server.counters["serve.fault.drop"] == 1
                    # ...and only the *next* use of the connection fails
                    with pytest.raises(ConnectionError):
                        await asyncio.wait_for(client.ping(), timeout=5)

        run(scenario())


class _GatedServer(ReasoningServer):
    """Requests with ``params.gated`` block until the gate opens."""

    def __init__(self, config):
        super().__init__(config)
        self.gate = asyncio.Event()

    async def _execute(self, request):
        if request.params.get("gated"):
            await self.gate.wait()
        return await super()._execute(request)


class TestHealthOp:
    def test_health_reports_ok_and_basic_gauges(self):
        async def scenario():
            async with _server() as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    health = await client.health()
                    assert health["status"] == "ok"
                    assert health["sessions"] == 0
                    assert health["draining"] is False
                    assert health["shedding"] is False
                    assert "faults" not in health
                    assert server.counters["serve.requests.health"] == 1

        run(scenario())

    def test_health_bypasses_backpressure_and_faults(self):
        plan = plan_of({"op": "ping", "kind": "drop", "when": "pre",
                        "every": 1})
        config = ServeConfig(max_inflight=1, max_pending_per_conn=4,
                             request_timeout=None, idle_ttl=None, workers=0,
                             fault_plan=plan)

        async def scenario():
            async with _GatedServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as probe:
                    # the plan drops every ping, but health is answered
                    # before injection is even consulted
                    health = await probe.health()
                    assert health["status"] == "ok"
                    assert health["faults"] == {"injected": 0}
                    # saturate the server: health still answers while a
                    # normal request is rejected overloaded
                    stuck = asyncio.ensure_future(
                        probe.request("metrics", gated=True))
                    while server._inflight < 1:
                        await asyncio.sleep(0.005)
                    health = await probe.health()
                    assert health["inflight"] == 1
                    with pytest.raises(ServerError) as info:
                        await probe.request("metrics")
                    assert info.value.code == ErrorCode.OVERLOADED
                    server.gate.set()
                    assert "server" in (await stuck)

        run(scenario())

    def test_health_answers_while_draining(self):
        config = ServeConfig(request_timeout=None, idle_ttl=None, workers=0,
                             drain_timeout=10.0)

        async def scenario():
            server = _GatedServer(config)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                inflight = asyncio.ensure_future(
                    client.request("ping", gated=True))
                while server._inflight < 1:
                    await asyncio.sleep(0.005)
                stopping = asyncio.ensure_future(server.shutdown())
                while not server._draining:
                    await asyncio.sleep(0.005)
                health = await client.health()
                assert health["status"] == "draining"
                assert health["draining"] is True
                with pytest.raises(ServerError) as info:
                    await client.ping()
                assert info.value.code == ErrorCode.SHUTTING_DOWN
                server.gate.set()
                assert (await inflight)["pong"] is True
                await stopping
            finally:
                await client.close()
                await server.shutdown()

        run(scenario())


class TestColdWorkShedding:
    def test_cold_closures_shed_hot_hits_served(self):
        config = ServeConfig(max_inflight=4, request_timeout=None,
                             idle_ttl=None, workers=0, shed_cold_at=0.5)

        async def scenario():
            async with _GatedServer(config) as server:
                host, port = server.address
                async with await AsyncClient.connect(host, port) as client:
                    await client.open("pub", SCHEMA, [MVD])
                    # warm one closure while the server is quiet
                    assert "Person" in await client.closure(
                        "pub", "Pubcrawl(Person)")

                    # park two gated requests: inflight hits the 0.5·4
                    # shedding threshold but stays under max_inflight
                    stuck = [asyncio.ensure_future(
                        client.request("ping", gated=True)) for _ in range(2)]
                    while server._inflight < 2:
                        await asyncio.sleep(0.005)

                    # cold lhs: shed with the retryable overload code
                    with pytest.raises(ServerError) as info:
                        await client.closure("pub", "Pubcrawl(Visit[λ])")
                    assert info.value.code == ErrorCode.OVERLOADED
                    assert info.value.retryable
                    assert "shedding" in info.value.message
                    assert server.counters["serve.shed_cold"] == 1

                    # hot lhs (implies shares the warmed mask): still served
                    assert await client.implies("pub", IMPLIED_FD) is True
                    health = await client.health()
                    assert health["status"] == "shedding"
                    assert health["shedding"] is True

                    server.gate.set()
                    for result in await asyncio.gather(*stuck):
                        assert result["pong"] is True
                    # capacity back: the cold lhs computes now
                    closure = await client.closure("pub", "Pubcrawl(Visit[λ])")
                    assert closure
                    assert (await client.health())["status"] == "ok"

        run(scenario())

    def test_shedding_disabled_by_default(self):
        async def scenario():
            async with _server() as server:
                assert server._shedding_cold() is False

        run(scenario())
