"""Unit tests for trace round-trip validation."""

import pytest

from repro.obs import validate_records, validate_trace
from repro.obs.validate import COMPLETION_ATTRS, REQUIRED_ATTRS


def _span(span_id, *, parent=None, name="custom.event", start=0, end=1,
          attrs=None):
    return {"event": "span", "id": span_id, "parent": parent, "name": name,
            "start_ns": start, "end_ns": end,
            "attrs": {} if attrs is None else attrs}


class TestValidateRecords:
    def test_counts_spans_and_metrics(self):
        records = [_span(1), _span(2, parent=1),
                   {"event": "metrics", "metrics": {"counters": {}}}]
        assert validate_records(records) == {"spans": 2, "metrics": 1}

    def test_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown event"):
            validate_records([{"event": "bogus"}])

    def test_rejects_metrics_without_payload(self):
        with pytest.raises(ValueError, match="metrics record"):
            validate_records([{"event": "metrics"}])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate id"):
            validate_records([_span(1), _span(1)])

    def test_rejects_non_monotonic_interval(self):
        with pytest.raises(ValueError, match="non-monotonic"):
            validate_records([_span(1, start=5, end=4)])

    def test_rejects_unfinished_span(self):
        with pytest.raises(ValueError, match="non-monotonic"):
            validate_records([_span(1, end=None)])

    def test_rejects_dangling_parent(self):
        with pytest.raises(ValueError, match="dangling parent"):
            validate_records([_span(1, parent=99)])

    def test_forward_parent_reference_is_fine(self):
        # Children finish (and stream out) before their parents.
        validate_records([_span(2, parent=1), _span(1)])

    def test_documented_span_names_require_their_attrs(self):
        with pytest.raises(ValueError, match="missing attribute keys"):
            validate_records([_span(1, name="closure.compute")])

    def test_error_spans_skip_completion_attrs(self):
        attrs = {key: 0 for key in REQUIRED_ATTRS["chase.run"]}
        with pytest.raises(ValueError, match="missing attribute keys"):
            validate_records([_span(1, name="chase.run", attrs=dict(attrs))])
        attrs["error"] = "ValueError"
        validate_records([_span(1, name="chase.run", attrs=attrs)])

    def test_every_documented_name_has_required_attrs(self):
        # COMPLETION_ATTRS only makes sense for documented span names.
        assert set(COMPLETION_ATTRS) <= set(REQUIRED_ATTRS)


class TestValidateTrace:
    def test_round_trips_a_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"event": "span", "id": 1, "parent": null, "name": "x", '
            '"start_ns": 0, "end_ns": 1, "attrs": {}}\n'
            "\n"  # blank lines are tolerated
            '{"event": "metrics", "metrics": {}}\n',
            encoding="utf-8",
        )
        assert validate_trace(str(path)) == {"spans": 1, "metrics": 1}

    def test_reports_line_number_on_bad_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":1:"):
            validate_trace(str(path))
