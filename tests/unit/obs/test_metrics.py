"""Unit tests for counters, bounded histograms and the registry."""

import pytest

from repro.obs import DEFAULT_BOUNDS, Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_repr(self):
        assert "value=0" in repr(Counter("x"))


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        histogram = Histogram("h", bounds=(1, 4, 16))
        for value in (0, 1, 2, 4, 5, 16, 17, 1000):
            histogram.observe(value)
        # buckets: ≤1, ≤4, ≤16, overflow
        assert histogram.buckets == [2, 2, 2, 2]

    def test_count_sum_min_max_mean(self):
        histogram = Histogram("h", bounds=(10,))
        for value in (2, 4, 6):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 12
        assert (histogram.min, histogram.max) == (2, 6)
        assert histogram.mean == 4

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.min is None
        assert histogram.as_dict()["count"] == 0

    def test_memory_is_bounded(self):
        histogram = Histogram("h")
        for value in range(10_000):
            histogram.observe(value)
        assert len(histogram.buckets) == len(DEFAULT_BOUNDS) + 1
        assert sum(histogram.buckets) == 10_000

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(4, 1))

    def test_default_bounds_are_ascending_powers(self):
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)
        assert DEFAULT_BOUNDS[0] == 1


class TestMetricsRegistry:
    def test_add_and_observe_create_on_demand(self):
        registry = MetricsRegistry()
        registry.add("c", 2)
        registry.observe("h", 3)
        assert registry.counter("c").value == 2
        assert registry.histogram("h").count == 1
        assert len(registry) == 2

    def test_same_name_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.add("b")
        registry.add("a", 3)
        registry.observe("h", 5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 3, "b": 1}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert list(snapshot["counters"]) == ["a", "b"]  # sorted

    def test_describe_empty_and_filled(self):
        registry = MetricsRegistry()
        assert registry.describe() == "(no metrics recorded)"
        registry.add("closure.runs", 2)
        registry.observe("closure.passes_per_run", 3)
        text = registry.describe()
        assert "closure.runs = 2" in text
        assert "count=1" in text

    def test_reset(self):
        registry = MetricsRegistry()
        registry.add("c")
        registry.observe("h", 1)
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == {"counters": {}, "histograms": {}}
