"""Unit tests for spans, the observer, and the install machinery."""

import pytest

from repro.obs import (
    NULL_SPAN,
    InMemorySink,
    Observer,
    get_observer,
    install,
    set_observer,
)


@pytest.fixture()
def sink():
    return InMemorySink()


@pytest.fixture()
def observer(sink):
    return Observer([sink])


class TestSpanLifecycle:
    def test_records_interval_and_attrs(self, observer, sink):
        with observer.span("closure.compute", size=7) as span:
            span.set(passes=2)
        [record] = sink.spans
        assert record["name"] == "closure.compute"
        assert record["parent"] is None
        assert record["attrs"] == {"size": 7, "passes": 2}
        assert 0 <= record["start_ns"] <= record["end_ns"]

    def test_nesting_parents_children(self, observer, sink):
        with observer.span("outer") as outer:
            assert observer.current_span_id() == outer.span_id
            with observer.span("inner"):
                pass
        inner, outer_record = sink.spans  # children finish first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer_record["id"]
        assert outer_record["parent"] is None
        assert observer.current_span_id() is None

    def test_sibling_spans_share_parent(self, observer, sink):
        with observer.span("outer"):
            with observer.span("first"):
                pass
            with observer.span("second"):
                pass
        assert [r["parent"] for r in sink.by_name("first")] == \
            [r["parent"] for r in sink.by_name("second")]

    def test_exception_sets_error_attr_and_unwinds(self, observer, sink):
        with pytest.raises(ValueError):
            with observer.span("outer"):
                with observer.span("inner"):
                    raise ValueError("boom")
        inner = sink.by_name("inner")[0]
        outer = sink.by_name("outer")[0]
        assert inner["attrs"]["error"] == "ValueError"
        assert outer["attrs"]["error"] == "ValueError"
        assert observer.current_span_id() is None

    def test_duration_property(self, observer):
        span = observer.span("outer")
        assert span.duration_ns is None
        span.__exit__(None, None, None)
        assert span.duration_ns >= 0

    def test_ids_are_unique_and_increasing(self, observer, sink):
        for _ in range(3):
            with observer.span("s"):
                pass
        ids = [record["id"] for record in sink.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3


class TestDisabledObserver:
    def test_span_is_null_span(self):
        disabled = Observer(enabled=False)
        assert disabled.span("anything", x=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(anything=1) is NULL_SPAN

    def test_metrics_are_dropped(self):
        disabled = Observer(enabled=False)
        disabled.add("counter")
        disabled.observe("histogram", 1)
        assert len(disabled.metrics) == 0

    def test_adopt_returns_nothing(self):
        disabled = Observer(enabled=False)
        assert disabled.adopt([{"id": 1, "parent": None}]) == []


class TestAdopt:
    def _worker_records(self):
        worker_sink = InMemorySink()
        worker = Observer([worker_sink])
        with worker.span("batch.worker", pid=123):
            with worker.span("closure.compute"):
                pass
        return worker_sink.spans

    def test_renumbers_and_reparents(self, observer, sink):
        records = self._worker_records()
        with observer.span("batch.prefetch") as prefetch:
            adopted = observer.adopt(records)
        by_name = {record["name"]: record for record in adopted}
        assert by_name["batch.worker"]["parent"] == prefetch.span_id
        assert by_name["closure.compute"]["parent"] == by_name["batch.worker"]["id"]
        # adopted ids must not collide with local ones
        local_ids = {record["id"] for record in sink.by_name("batch.prefetch")}
        assert local_ids.isdisjoint(record["id"] for record in adopted)

    def test_adopted_records_reach_sinks(self, observer, sink):
        observer.adopt(self._worker_records())
        assert len(sink.by_name("batch.worker")) == 1

    def test_explicit_parent_wins(self, observer):
        adopted = observer.adopt(self._worker_records(), parent_id=77)
        roots = [record for record in adopted
                 if record["name"] == "batch.worker"]
        assert roots[0]["parent"] == 77

    def test_two_workers_stay_disjoint(self, observer):
        first = observer.adopt(self._worker_records())
        second = observer.adopt(self._worker_records())
        first_ids = {record["id"] for record in first}
        second_ids = {record["id"] for record in second}
        assert first_ids.isdisjoint(second_ids)


class TestInstall:
    def test_default_observer_is_disabled(self):
        assert get_observer().enabled is False

    def test_install_swaps_and_restores(self):
        previous = get_observer()
        active = Observer()
        with install(active) as installed:
            assert installed is active
            assert get_observer() is active
        assert get_observer() is previous

    def test_install_restores_after_exception(self):
        previous = get_observer()
        with pytest.raises(RuntimeError):
            with install(Observer()):
                raise RuntimeError
        assert get_observer() is previous

    def test_install_closes_sinks(self, sink):
        with install(Observer([sink])):
            pass
        assert len(sink.metrics) == 1  # close() flushed a final snapshot

    def test_set_observer_none_means_disabled(self):
        previous = set_observer(None)
        try:
            assert get_observer().enabled is False
        finally:
            set_observer(previous)
