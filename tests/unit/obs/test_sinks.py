"""Unit tests for the sink implementations."""

import io
import json
import os
import signal
import subprocess
import sys

from repro.obs import InMemorySink, JsonlSink, NullSink, Sink


def _span(span_id, parent=None, name="s"):
    return {"event": "span", "id": span_id, "parent": parent, "name": name,
            "start_ns": 0, "end_ns": 1, "attrs": {}}


class TestBaseAndNullSink:
    def test_base_interface_is_all_noops(self):
        sink = Sink()
        sink.on_span(_span(1))
        sink.on_metrics({})
        sink.flush()
        sink.close()

    def test_null_sink_discards(self):
        sink = NullSink()
        sink.on_span(_span(1))
        sink.close()


class TestInMemorySink:
    def test_helpers(self):
        sink = InMemorySink()
        sink.on_span(_span(1, name="root"))
        sink.on_span(_span(2, parent=1, name="child"))
        sink.on_span(_span(3, parent=1, name="child"))
        sink.on_metrics({"counters": {}})
        assert [r["id"] for r in sink.roots()] == [1]
        assert [r["id"] for r in sink.children_of(1)] == [2, 3]
        assert len(sink.by_name("child")) == 2
        assert len(sink.metrics) == 1

    def test_clear(self):
        sink = InMemorySink()
        sink.on_span(_span(1))
        sink.on_metrics({})
        sink.clear()
        assert sink.spans == [] and sink.metrics == []


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.on_span(_span(1))
        sink.on_metrics({"counters": {"c": 1}})
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "span"
        assert json.loads(lines[1]) == {
            "event": "metrics", "metrics": {"counters": {"c": 1}}
        }
        assert sink.records_written == 2

    def test_lazy_open_creates_no_file_without_records(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(str(path))
        sink.flush()
        sink.close()
        assert not path.exists()

    def test_events_after_close_are_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.on_span(_span(1))
        sink.close()
        sink.on_span(_span(2))  # must not raise, must not reopen
        assert sink.records_written == 1
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1

    def test_accepts_file_object_without_closing_it(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.on_span(_span(1))
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["id"] == 1


class TestJsonlDurability:
    """Flush-on-root + atexit close: a reader (or a crash) between
    requests always sees whole, parseable lines."""

    def test_root_span_flushes_to_disk_before_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.on_span(_span(2, parent=1, name="child"))
        sink.on_span(_span(1, name="root"))
        # no close() — the completed tree alone must be durable
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "child", "root"]
        sink.close()

    def test_flush_on_root_can_be_disabled(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path), flush_on_root=False)
        sink.on_span(_span(1, name="root"))
        assert sink.records_written == 1
        sink.close()  # close still lands everything
        assert json.loads(path.read_text(encoding="utf-8"))["name"] == "root"

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.on_span(_span(1))
        sink.on_span(_span(2))  # dropped: sink already closed
        assert sink.records_written == 1
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1

    def test_atexit_hook_tracks_handle_ownership(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        assert not sink._atexit_registered  # lazy: no file yet
        sink.on_span(_span(1))
        assert sink._atexit_registered
        sink.close()
        assert not sink._atexit_registered  # unregistered: no leak

    def test_wrapped_file_object_never_registers_atexit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            sink = JsonlSink(handle)
            sink.on_span(_span(1))
            assert not sink._atexit_registered
            sink.close()

    def test_every_line_parses_after_a_hard_kill(self, tmp_path):
        """A SIGKILLed process (no atexit!) still leaves a parseable
        file thanks to flush-on-root."""
        path = tmp_path / "trace.jsonl"
        script = (
            "import os, signal\n"
            "from repro.obs.sinks import JsonlSink\n"
            f"sink = JsonlSink({str(path)!r})\n"
            "for i in range(1, 51):\n"
            "    sink.on_span({'event': 'span', 'id': i, 'parent': None,\n"
            "                  'name': f'req-{i}', 'start_ns': 0,\n"
            "                  'end_ns': 1, 'attrs': {}})\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=dict(os.environ),
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 50
        for line in lines:
            json.loads(line)  # every line is a complete record
