"""Unit tests for the workload generators and paper fixtures."""

import random

import pytest

from repro.attributes import BasisEncoding, basis_size, is_subattribute
from repro.workloads import (
    deep_list_chain,
    example_4_12,
    example_5_1,
    figure_1_root,
    flat_record,
    mixed_family,
    pubcrawl,
    random_attribute,
    random_dependency,
    random_element_mask,
    random_sigma,
    record_of_lists,
)


class TestSizedFamilies:
    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_flat_record_size(self, width):
        assert basis_size(flat_record(width)) == width

    @pytest.mark.parametrize("width", [1, 4])
    def test_record_of_lists_size(self, width):
        assert basis_size(record_of_lists(width)) == 2 * width

    @pytest.mark.parametrize("depth", [0, 1, 5])
    def test_deep_list_chain_size(self, depth):
        assert basis_size(deep_list_chain(depth)) == depth + 1

    @pytest.mark.parametrize("scale", [1, 3])
    def test_mixed_family_size(self, scale):
        assert basis_size(mixed_family(scale)) == 4 * scale

    def test_families_reject_bad_parameters(self):
        with pytest.raises(ValueError):
            flat_record(0)
        with pytest.raises(ValueError):
            record_of_lists(0)
        with pytest.raises(ValueError):
            deep_list_chain(-1)
        with pytest.raises(ValueError):
            mixed_family(0)


class TestRandomGenerators:
    def test_random_attribute_deterministic(self):
        first = random_attribute(random.Random(9))
        second = random_attribute(random.Random(9))
        assert first == second

    def test_random_attribute_never_null(self):
        for seed in range(30):
            attribute = random_attribute(random.Random(seed))
            assert not attribute.is_null

    def test_allow_flat_root_false(self):
        for seed in range(30):
            attribute = random_attribute(random.Random(seed), allow_flat_root=False)
            assert not attribute.is_flat

    def test_random_element_mask_is_element(self):
        encoding = BasisEncoding(mixed_family(2))
        rng = random.Random(4)
        for _ in range(50):
            mask = random_element_mask(rng, encoding)
            assert encoding.is_downclosed(mask)

    def test_random_dependency_sides_are_elements(self):
        encoding = BasisEncoding(record_of_lists(3))
        rng = random.Random(2)
        for _ in range(20):
            dependency = random_dependency(rng, encoding)
            assert is_subattribute(dependency.lhs, encoding.root)
            assert is_subattribute(dependency.rhs, encoding.root)

    def test_random_sigma_size_and_root(self):
        encoding = BasisEncoding(flat_record(4))
        sigma = random_sigma(random.Random(0), encoding, 5)
        assert len(sigma) <= 5
        assert sigma.root == encoding.root


class TestScenarios:
    def test_pubcrawl_has_seven_tuples(self):
        assert len(pubcrawl().instance) == 7

    def test_pubcrawl_sigma(self):
        scenario = pubcrawl()
        assert len(scenario.sigma()) == 1

    def test_example_5_1_resolves(self):
        fixture = example_5_1()
        assert len(list(fixture.sigma)) == 3
        assert len(fixture.resolve(fixture.dependency_basis_texts)) == 13

    def test_example_4_12_possession_fixture(self):
        root, x, possessed, not_possessed = example_4_12()
        assert is_subattribute(x, root)
        assert is_subattribute(possessed, x)
        assert is_subattribute(not_possessed, x)

    def test_figure_1_root_size(self):
        from repro.attributes import count_subattributes

        assert count_subattributes(figure_1_root()) == 11


class TestPubcrawlWorkload:
    def test_satisfies_its_sigma_by_construction(self):
        from repro.dependencies import satisfies_all
        from repro.workloads import pubcrawl_workload

        workload = pubcrawl_workload(30)
        assert satisfies_all(workload.root, workload.instance, workload.sigma)
        assert len(workload.instance) >= 30  # ≈ 4 per person minus collisions

    def test_deterministic(self):
        from repro.workloads import pubcrawl_workload

        assert pubcrawl_workload(10).instance == pubcrawl_workload(10).instance

    def test_dropped_combinations_violate_and_chase_back(self):
        from repro.chase import chase
        from repro.dependencies import satisfies_all
        from repro.workloads import pubcrawl_workload

        workload = pubcrawl_workload(12)
        broken = workload.with_dropped_combinations()
        assert broken < workload.instance
        assert not satisfies_all(workload.root, broken, workload.sigma)
        repaired = chase(workload.root, broken, workload.sigma)
        assert repaired.instance == workload.instance
