"""Exact-count tests for the instrumentation counters and cache_info().

The observability layer folds :class:`KernelStats`, the reasoner cache
counters and the encoding memo-cache counters into span attributes and
metrics, so their *exact* values are now API: a counter that drifts by
one double-counts (or drops) an event in every trace.  These tests pin
the counts on hand-derived workloads small enough to replay on paper.

The ``cache_clear`` contract (keyword-only flags, resets exactly what
``cache_info()`` reports, ``encoding=True`` cascades one layer down) is
verified across all three implementations at the bottom.
"""

from __future__ import annotations

import pytest

from repro.attributes import BasisEncoding, parse_attribute, parse_subattribute
from repro.batch import BulkReasoner
from repro.core.closure import closure_of_masks_instrumented
from repro.core.engine import KernelStats, closure_of_masks_fast
from repro.reasoner import Reasoner


@pytest.fixture()
def flat():
    """``R(A, B, C)`` with its encoding and the three singleton masks."""
    root = parse_attribute("R(A, B, C)")
    encoding = BasisEncoding(root)

    def mask(text):
        return encoding.encode(parse_subattribute(text, root))

    return encoding, mask("R(A)"), mask("R(B)"), mask("R(C)")


class TestKernelStatsExactCounts:
    """Counter-for-counter replays of the worklist kernel on R(A, B, C)."""

    def test_empty_sigma(self, flat):
        encoding, a, _, _ = flat
        stats = KernelStats()
        closure_of_masks_fast(encoding, a, [], [], stats=stats)
        assert stats.as_dict() == {
            "runs": 1, "passes": 1, "firings": 0, "requeues": 0,
            "requeue_scanned": 0, "skipped_firings": 0,
            "u_bar_lookups": 0, "u_bar_blocks": 0, "block_splits": 0,
            "db_rewrites": 0, "dirty_bits": 0,
        }

    def test_single_firing_fd(self, flat):
        # A -> B from X = A: one productive firing (rewriting the B|C
        # block into B and C singletons, 2 dirty bits), one requeued
        # re-fire that changes nothing.  The one dirty event scans the
        # whole (singleton) Σ: requeue_scanned = 1.
        encoding, a, b, _ = flat
        stats = KernelStats()
        closure_of_masks_fast(encoding, a, [(a, b)], [], stats=stats)
        assert stats.as_dict() == {
            "runs": 1, "passes": 2, "firings": 2, "requeues": 1,
            "requeue_scanned": 1, "skipped_firings": 0,
            "u_bar_lookups": 0, "u_bar_blocks": 0, "block_splits": 0,
            "db_rewrites": 1, "dirty_bits": 2,
        }

    def test_single_firing_mvd(self, flat):
        # A ->> B from X = A: same shape, but the block change is a
        # *split* of B|C (no FD rewrite), and the trivial mixed meet
        # adds nothing to X+.
        encoding, a, b, _ = flat
        stats = KernelStats()
        result, _, _ = closure_of_masks_fast(encoding, a, [], [(a, b)], stats=stats)
        assert result == a
        assert stats.as_dict() == {
            "runs": 1, "passes": 2, "firings": 2, "requeues": 1,
            "requeue_scanned": 1, "skipped_firings": 0,
            "u_bar_lookups": 0, "u_bar_blocks": 0, "block_splits": 1,
            "db_rewrites": 0, "dirty_bits": 2,
        }

    def test_skipped_firing_counts_u_bar_lookup(self, flat):
        # B -> C from X = A: B is not below X_new, so Ū actually scans
        # the owner index (one lookup visiting the one distinct owner
        # block B|C), swallows C, and the firing is skipped without any
        # state change.
        encoding, a, b, c = flat
        stats = KernelStats()
        closure_of_masks_fast(encoding, a, [(b, c)], [], stats=stats)
        assert stats.as_dict() == {
            "runs": 1, "passes": 1, "firings": 1, "requeues": 0,
            "requeue_scanned": 0, "skipped_firings": 1,
            "u_bar_lookups": 1, "u_bar_blocks": 1, "block_splits": 0,
            "db_rewrites": 0, "dirty_bits": 0,
        }

    def test_accumulates_across_runs(self, flat):
        encoding, a, b, _ = flat
        stats = KernelStats()
        closure_of_masks_fast(encoding, a, [(a, b)], [], stats=stats)
        closure_of_masks_fast(encoding, a, [(a, b)], [], stats=stats)
        assert stats.runs == 2
        assert stats.passes == 4
        assert stats.firings == 4

    def test_merge_and_reset(self):
        left, right = KernelStats(), KernelStats()
        left.firings = 3
        left.dirty_bits = 5
        right.firings = 4
        right.runs = 1
        left.merge(right)
        assert left.firings == 7
        assert left.dirty_bits == 5
        assert left.runs == 1
        left.reset()
        assert all(value == 0 for value in left.as_dict().values())

    def test_instrumented_entry_point_counts_once(self, flat):
        # With the default (disabled) observer the obs entry point must
        # produce byte-identical counters to the raw kernel — merging a
        # private per-run instance must not double-count.
        encoding, a, b, _ = flat
        direct, via_obs = KernelStats(), KernelStats()
        closure_of_masks_fast(encoding, a, [(a, b)], [], stats=direct)
        closure_of_masks_instrumented(encoding, a, [(a, b)], [], stats=via_obs)
        assert via_obs.as_dict() == direct.as_dict()


class TestReasonerCacheInfoExactCounts:
    QUERY_TEXTS = (
        "R(A) -> R(B)",     # computes A+
        "R(A) ->> R(C)",    # hit (same lhs)
        "R(B) -> R(C)",     # computes B+
        "R(A) -> R(C)",     # hit
        "R(C) ->> R(A)",    # computes C+
    )

    def test_three_distinct_lhs_two_hits(self):
        reasoner = Reasoner("R(A, B, C)", ["R(A) -> R(B)"])
        for text in self.QUERY_TEXTS:
            reasoner.implies(text)
        info = reasoner.cache_info()
        assert (info.computed, info.hits) == (3, 2)
        assert info.evictions == 0
        assert info.maxsize is None
        # tuple-compatibility: unpacks like the historical two-tuple
        computed, hits = info
        assert (computed, hits) == (3, 2)
        # one kernel run per computed entry, never per hit
        assert info.kernel.runs == 3

    def test_bounded_cache_counts_evictions(self):
        reasoner = Reasoner("R(A, B, C)", ["R(A) -> R(B)"], maxsize=2)
        for text in self.QUERY_TEXTS:
            reasoner.implies(text)
        info = reasoner.cache_info()
        assert info.computed == 2          # live entries, capped
        assert info.evictions == 1         # A+ evicted when C+ arrived
        assert info.maxsize == 2

    def test_bulk_reasoner_delegates(self):
        bulk = BulkReasoner("R(A, B, C)", ["R(A) -> R(B)"])
        bulk.implies_all(list(self.QUERY_TEXTS))
        info = bulk.cache_info()
        assert (info.computed, info.hits) == (3, 2)
        assert info == bulk.reasoner.cache_info()


class TestEncodingCacheInfoExactCounts:
    def test_per_operation_hits_and_misses(self, flat):
        encoding = BasisEncoding(parse_attribute("R(A, B, C)"))
        _, a, b, _ = flat
        encoding.complement(a); encoding.complement(a)
        encoding.pseudo_difference(b, a); encoding.pseudo_difference(b, a)
        encoding.possessed(b); encoding.possessed(b)
        # double_complement(b) internally consults possessed(b): one
        # extra possessed *hit*, not a miss.
        encoding.double_complement(b); encoding.double_complement(b)
        info = encoding.cache_info()
        assert info["complement"][:3] == (1, 1, 1)
        assert info["pseudo_difference"][:3] == (1, 1, 1)
        assert info["possessed"][:3] == (2, 1, 1)
        assert info["double_complement"][:3] == (1, 1, 1)
        assert encoding.cache_totals() == (5, 4)

    def test_cache_totals_matches_cache_info(self, flat):
        encoding, a, b, c = flat
        closure_of_masks_fast(encoding, a, [(a, b)], [(b, c)])
        info = encoding.cache_info()
        hits = sum(row[0] for row in info.values())
        misses = sum(row[1] for row in info.values())
        assert encoding.cache_totals() == (hits, misses)
        assert misses > 0


class TestCacheClearContract:
    """One keyword contract across Reasoner, BulkReasoner, BasisEncoding.

    ``cache_clear`` resets exactly the state its ``cache_info()``
    reports on; the keyword-only ``encoding`` flag cascades one layer
    down to :meth:`BasisEncoding.cache_clear`.
    """

    @staticmethod
    def _warm(reasoner: Reasoner) -> None:
        reasoner.implies("R(A) -> R(C)")
        reasoner.implies("R(A) ->> R(B)")

    @staticmethod
    def _assert_reasoner_reset(info) -> None:
        assert (info.computed, info.hits, info.evictions) == (0, 0, 0)
        assert all(value == 0 for value in info.kernel.as_dict().values())

    @staticmethod
    def _encoding_traffic(info) -> int:
        return sum(row[0] + row[1] + row[2] for row in info.values())

    def test_default_keeps_encoding_caches(self):
        reasoner = Reasoner("R(A, B, C)", ["R(A) -> R(B)"])
        self._warm(reasoner)
        before = self._encoding_traffic(reasoner.schema.encoding.cache_info())
        assert before > 0
        reasoner.cache_clear()
        self._assert_reasoner_reset(reasoner.cache_info())
        after = self._encoding_traffic(reasoner.schema.encoding.cache_info())
        assert after == before

    def test_encoding_flag_cascades(self):
        reasoner = Reasoner("R(A, B, C)", ["R(A) -> R(B)"])
        self._warm(reasoner)
        reasoner.cache_clear(encoding=True)
        self._assert_reasoner_reset(reasoner.cache_info())
        assert self._encoding_traffic(reasoner.schema.encoding.cache_info()) == 0
        assert reasoner.schema.encoding.cache_totals() == (0, 0)

    def test_bulk_reasoner_forwards_verbatim(self):
        bulk = BulkReasoner("R(A, B, C)", ["R(A) -> R(B)"])
        bulk.implies_all(["R(A) -> R(C)", "R(B) ->> R(C)"])
        bulk.cache_clear(encoding=True)
        self._assert_reasoner_reset(bulk.cache_info())
        assert self._encoding_traffic(
            bulk.reasoner.schema.encoding.cache_info()
        ) == 0

    def test_flags_are_keyword_only(self):
        reasoner = Reasoner("R(A, B, C)", [])
        bulk = BulkReasoner("R(A, B, C)", [])
        with pytest.raises(TypeError):
            reasoner.cache_clear(True)
        with pytest.raises(TypeError):
            bulk.cache_clear(True)
