"""The §7 set/multiset demonstrations: where the list-type theory breaks.

The paper's conclusion makes two claims about richer type systems, proven
in companion work but only *stated* here; these tests make both
executable:

1. "the extension rule is no longer valid in the presence of sets" — an
   instance over a set-typed attribute satisfies ``X → Y`` but violates
   ``X → X ⊔ Y``.
2. MVDs "deviate from binary join dependencies" / Theorem 4.4 fails for
   sets — with deduplicating projections, reconstructability and the
   exchange property come apart even more readily than for lists.

The module also covers the extension substrate itself (domains,
projections, multisets) and checks that the core algorithm refuses
set-typed inputs instead of answering unsoundly.
"""

import pytest

from repro.attributes import NULL, Flat, Record, parse_attribute as p
from repro.exceptions import InvalidValueError, NotASubattributeError
from repro.extensions.settypes import (
    Multiset,
    MultisetAttr,
    SetAttr,
    contains_set_types,
    set_is_subattribute,
    set_project,
    set_satisfies_fd,
    set_validate_value,
)
from repro.values import OK


@pytest.fixture()
def pair_set_root():
    """``W(S{P(A, B)})`` — a record wrapping a set of pairs."""
    return Record("W", (SetAttr("S", Record("P", (Flat("A"), Flat("B")))),))


class TestConstructors:
    def test_set_attr_basics(self):
        s = SetAttr("S", Flat("A"))
        assert s.head() == "S"
        assert s.depth() == 1
        assert s.children() == (Flat("A"),)
        assert str(s) == "S{A}"

    def test_multiset_attr_basics(self):
        m = MultisetAttr("M", Flat("A"))
        assert str(m) == "M<A>"
        assert m != SetAttr("M", Flat("A"))

    def test_equality_and_hash(self):
        assert SetAttr("S", Flat("A")) == SetAttr("S", Flat("A"))
        assert hash(SetAttr("S", Flat("A"))) == hash(SetAttr("S", Flat("A")))
        assert SetAttr("S", Flat("A")) != SetAttr("S", Flat("B"))

    def test_immutability(self):
        s = SetAttr("S", Flat("A"))
        with pytest.raises(AttributeError):
            s.label = "T"

    def test_contains_set_types(self, pair_set_root):
        assert contains_set_types(pair_set_root)
        assert not contains_set_types(p("R(A, L[B])"))


class TestMultisetValue:
    def test_counts_and_len(self):
        m = Multiset([1, 1, 2])
        assert len(m) == 3
        assert m.counts() == frozenset({(1, 2), (2, 1)})

    def test_order_insensitive_equality(self):
        assert Multiset([1, 2, 1]) == Multiset([1, 1, 2])
        assert hash(Multiset([1, 2, 1])) == hash(Multiset([2, 1, 1]))

    def test_multiplicity_matters(self):
        assert Multiset([1, 1]) != Multiset([1])

    def test_elements_iterates_with_multiplicity(self):
        assert sorted(Multiset([2, 1, 1]).elements()) == [1, 1, 2]

    def test_immutable(self):
        m = Multiset([1])
        with pytest.raises(AttributeError):
            m._items = frozenset()


class TestSubattributeExtension:
    def test_lambda_below_set_and_multiset(self):
        assert set_is_subattribute(NULL, SetAttr("S", Flat("A")))
        assert set_is_subattribute(NULL, MultisetAttr("M", Flat("A")))

    def test_monotone_in_element(self, pair_set_root):
        smaller = Record("W", (SetAttr("S", Record("P", (Flat("A"), NULL))),))
        assert set_is_subattribute(smaller, pair_set_root)
        assert not set_is_subattribute(pair_set_root, smaller)

    def test_set_never_below_list(self):
        assert not set_is_subattribute(SetAttr("L", Flat("A")), p("L[A]"))
        assert not set_is_subattribute(p("L[A]"), SetAttr("L", Flat("A")))

    def test_pure_list_cases_delegate_to_core(self):
        assert set_is_subattribute(p("R(A, λ)"), p("R(A, B)"))


class TestValuesAndProjection:
    def test_set_values_are_frozensets(self):
        attribute = SetAttr("S", Flat("A"))
        set_validate_value(attribute, frozenset({1, 2}))
        with pytest.raises(InvalidValueError):
            set_validate_value(attribute, (1, 2))

    def test_multiset_values(self):
        attribute = MultisetAttr("M", Flat("A"))
        set_validate_value(attribute, Multiset([1, 1]))
        with pytest.raises(InvalidValueError):
            set_validate_value(attribute, frozenset({1}))

    def test_set_projection_deduplicates(self, pair_set_root):
        target = Record("W", (SetAttr("S", Record("P", (Flat("A"), NULL))),))
        value = (frozenset({(1, "x"), (1, "y"), (2, "z")}),)
        projected = set_project(pair_set_root, target, value)
        # (1,x) and (1,y) collapse: cardinality shrinks from 3 to 2.
        assert projected == (frozenset({(1, OK), (2, OK)}),)

    def test_multiset_projection_preserves_cardinality(self):
        root = MultisetAttr("M", Record("P", (Flat("A"), Flat("B"))))
        target = MultisetAttr("M", Record("P", (Flat("A"), NULL)))
        value = Multiset([(1, "x"), (1, "y")])
        projected = set_project(root, target, value)
        assert projected == Multiset([(1, OK), (1, OK)])
        assert len(projected) == 2  # multiplicity kept, unlike the set

    def test_projection_rejects_non_subattribute(self):
        with pytest.raises(NotASubattributeError):
            set_project(SetAttr("S", Flat("A")), Flat("A"), frozenset())


class TestExtensionRuleFailsForSets:
    """§7 claim 1: X → Y ⊬ X → X ⊔ Y over set types."""

    def test_counterexample(self, pair_set_root):
        x = Record("W", (SetAttr("S", Record("P", (Flat("A"), NULL))),))
        y = Record("W", (SetAttr("S", Record("P", (NULL, Flat("B")))),))
        xy = pair_set_root  # X ⊔ Y is the full attribute

        # Two distinct sets whose A-projections agree AND B-projections
        # agree — impossible for lists (positions pin the pairing), easy
        # for sets (deduplicated, unordered).
        t1 = (frozenset({(1, "x"), (2, "y")}),)
        t2 = (frozenset({(1, "y"), (2, "x")}),)
        instance = [t1, t2]

        assert set_project(pair_set_root, x, t1) == set_project(pair_set_root, x, t2)
        assert set_project(pair_set_root, y, t1) == set_project(pair_set_root, y, t2)
        assert t1 != t2

        # X → Y holds (vacuously strong: all tuples agree on both sides)…
        assert set_satisfies_fd(pair_set_root, instance, x, y)
        # …but the extension-rule conclusion X → X ⊔ Y fails.
        assert not set_satisfies_fd(pair_set_root, instance, x, xy)

    def test_lists_do_not_admit_the_counterexample(self):
        # The same data as ordered lists: the positionwise projections
        # differ, so the premise already fails — extension stays sound.
        from repro.values import project
        from repro.dependencies import FD, satisfies

        root = p("W(L[P(A, B)])")
        x = p("W(L[P(A, λ)])")
        t1 = (((1, "x"), (2, "y")),)
        t2 = (((1, "y"), (2, "x")),)
        assert project(root, x, t1) == project(root, x, t2)
        y = p("W(L[P(λ, B)])")
        assert project(root, y, t1) != project(root, y, t2)  # order shows


class TestMVDsDeviateFromBinaryJoins:
    """§7 claim 2: with sets, Theorem 4.4's equivalence collapses."""

    def test_reconstructable_but_exchange_fails(self, pair_set_root):
        # X = λ-ish bottom, Y = the A-side.  The two tuples of the
        # extension-rule counterexample agree on BOTH decomposition
        # attributes (X⊔Y and X⊔Y^C would be the A-side and B-side sets),
        # so the binary projections cannot distinguish them at all: the
        # join of the projections is a single reconstruction candidate
        # while the instance holds two distinct tuples — the instance is
        # NOT the join of its projections even though every exchange
        # requirement among the projections is trivially met.
        a_side = Record("W", (SetAttr("S", Record("P", (Flat("A"), NULL))),))
        b_side = Record("W", (SetAttr("S", Record("P", (NULL, Flat("B")))),))
        t1 = (frozenset({(1, "x"), (2, "y")}),)
        t2 = (frozenset({(1, "y"), (2, "x")}),)
        instance = {t1, t2}

        projections_a = {set_project(pair_set_root, a_side, t) for t in instance}
        projections_b = {set_project(pair_set_root, b_side, t) for t in instance}
        # Both projections are singletons: the binary decomposition keeps
        # ONE row of information for TWO distinct tuples — lossy, with no
        # violated exchange anywhere to blame.  For lists, the pair of
        # projections uniquely determines the tuple (the fact the MVD
        # cross-product checker relies on); for sets it does not.
        assert len(projections_a) == 1
        assert len(projections_b) == 1
        assert len(instance) == 2


class TestCoreRefusesSetTypes:
    def test_basis_machinery_rejects(self, pair_set_root):
        from repro.attributes import basis

        with pytest.raises(TypeError):
            basis(pair_set_root)

    def test_encoding_rejects(self, pair_set_root):
        from repro.attributes import BasisEncoding

        with pytest.raises(TypeError):
            BasisEncoding(pair_set_root)


class TestMultisetsAlsoBreakExtensionRule:
    """Multiplicities alone cannot restore the pairing either."""

    def test_counterexample_with_multisets(self):
        root = Record(
            "W", (MultisetAttr("M", Record("P", (Flat("A"), Flat("B")))),)
        )
        x = Record("W", (MultisetAttr("M", Record("P", (Flat("A"), NULL))),))
        y = Record("W", (MultisetAttr("M", Record("P", (NULL, Flat("B")))),))

        t1 = (Multiset([(1, "x"), (2, "y")]),)
        t2 = (Multiset([(1, "y"), (2, "x")]),)
        instance = [t1, t2]

        assert set_project(root, x, t1) == set_project(root, x, t2)
        assert set_project(root, y, t1) == set_project(root, y, t2)
        assert t1 != t2
        assert set_satisfies_fd(root, instance, x, y)
        assert not set_satisfies_fd(root, instance, x, root)

    def test_multisets_do_distinguish_multiplicities(self):
        # Where sets lose information, multisets keep it: {a, a} vs {a}.
        attribute = MultisetAttr("M", Record("P", (Flat("A"), Flat("B"))))
        target = MultisetAttr("M", Record("P", (Flat("A"), NULL)))
        doubled = Multiset([(1, "x"), (1, "y")])
        single = Multiset([(1, "x")])
        assert set_project(attribute, target, doubled) != set_project(
            attribute, target, single
        )
