"""Unit tests for the JSON interchange module."""

import json

import pytest

from repro import Schema
from repro.attributes import parse_attribute as p, parse_subattribute
from repro.exceptions import InvalidValueError
from repro.io import (
    Problem,
    dump_problem,
    instance_from_json,
    instance_to_json,
    load_problem,
    value_from_json,
    value_to_json,
)
from repro.values import OK, project


class TestValueRoundtrip:
    def test_record_as_object(self):
        root = p("Drink(Beer, Pub)")
        data = value_to_json(root, ("Lübzer", "Deanos"))
        assert data == {"Beer": "Lübzer", "Pub": "Deanos"}
        assert value_from_json(root, data) == ("Lübzer", "Deanos")

    def test_nested_lists(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        value = ("Sven", (("Lübzer", "Deanos"), ("Kindl", "Highflyers")))
        data = value_to_json(root, value)
        assert data == {
            "Person": "Sven",
            "Visit": [
                {"Beer": "Lübzer", "Pub": "Deanos"},
                {"Beer": "Kindl", "Pub": "Highflyers"},
            ],
        }
        assert value_from_json(root, data) == value

    def test_empty_list(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        value = ("Sebastian", ())
        assert value_from_json(root, value_to_json(root, value)) == value

    def test_duplicate_heads_use_arrays(self):
        root = p("L(A, A)")
        data = value_to_json(root, (1, 2))
        assert data == [1, 2]
        assert value_from_json(root, data) == (1, 2)

    def test_projected_values_with_ok_slots(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        target = parse_subattribute("Pubcrawl(Person, Visit[Drink(Pub)])", root)
        value = ("Sven", (("Lübzer", "Deanos"),))
        projected = project(root, target, value)
        data = value_to_json(target, projected)
        # ok placeholders disappear from the JSON...
        assert data == {"Person": "Sven", "Visit": [{"Pub": "Deanos"}]}
        # ...and come back on load.
        assert value_from_json(target, data) == projected

    def test_json_serialisable(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        for value in pubcrawl_scenario.instance:
            json.dumps(value_to_json(root, value))


class TestValueFromJsonErrors:
    def test_wrong_arity_array(self):
        with pytest.raises(InvalidValueError):
            value_from_json(p("R(A, B)"), [1])

    def test_unknown_key(self):
        with pytest.raises(InvalidValueError):
            value_from_json(p("R(A, B)"), {"A": 1, "Z": 2})

    def test_scalar_where_list_expected(self):
        with pytest.raises(InvalidValueError):
            value_from_json(p("L[A]"), 7)

    def test_structure_where_scalar_expected(self):
        with pytest.raises(InvalidValueError):
            value_from_json(p("A"), {"x": 1})

    def test_object_for_ambiguous_record(self):
        with pytest.raises(InvalidValueError):
            value_from_json(p("L(A, A)"), {"A": 1})

    def test_null_for_lambda(self):
        assert value_from_json(p("λ"), None) == OK
        with pytest.raises(InvalidValueError):
            value_from_json(p("λ"), 1)


class TestInstanceRoundtrip:
    def test_pubcrawl_instance(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        data = instance_to_json(root, pubcrawl_scenario.instance)
        assert len(data) == 7
        assert instance_from_json(root, data) == pubcrawl_scenario.instance

    def test_output_is_sorted_and_stable(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        first = instance_to_json(root, pubcrawl_scenario.instance)
        second = instance_to_json(root, set(pubcrawl_scenario.instance))
        assert first == second


class TestProblemFiles:
    def test_roundtrip(self, tmp_path, pubcrawl_scenario):
        schema = Schema(pubcrawl_scenario.root)
        sigma = schema.dependencies(pubcrawl_scenario.holding_mvd_text)
        problem = Problem(schema, sigma, pubcrawl_scenario.instance)
        path = tmp_path / "pubcrawl.json"
        dump_problem(path, problem)

        loaded = load_problem(path)
        assert loaded.schema.root == pubcrawl_scenario.root
        assert set(loaded.sigma) == set(sigma)
        assert loaded.instance == pubcrawl_scenario.instance

    def test_problem_without_instance(self, tmp_path):
        schema = Schema("R(A, B)")
        problem = Problem(schema, schema.dependencies("R(A) -> R(B)"))
        path = tmp_path / "problem.json"
        dump_problem(path, problem)
        loaded = load_problem(path)
        assert loaded.instance is None
        assert len(loaded.sigma) == 1

    def test_loaded_problem_is_usable(self, tmp_path, pubcrawl_scenario):
        schema = Schema(pubcrawl_scenario.root)
        sigma = schema.dependencies(pubcrawl_scenario.holding_mvd_text)
        path = tmp_path / "problem.json"
        dump_problem(path, Problem(schema, sigma, pubcrawl_scenario.instance))
        loaded = load_problem(path)
        assert loaded.schema.satisfies_all(loaded.instance, loaded.sigma)
        assert loaded.schema.implies(
            loaded.sigma, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
        )

    def test_file_is_human_readable_json(self, tmp_path):
        schema = Schema("R(A, B)")
        path = tmp_path / "problem.json"
        dump_problem(path, Problem(schema, schema.dependencies()))
        text = path.read_text(encoding="utf-8")
        assert '"schema": "R(A, B)"' in text


class TestWireRoundTrip:
    """``Problem.to_json``/``from_json`` through an actual JSON string —
    the shape the server's ``open`` op and problem files both speak —
    with no file in between."""

    def _problem(self, scenario):
        schema = Schema(scenario.root)
        sigma = schema.dependencies(
            scenario.holding_mvd_text,
            "Pubcrawl(Person) -> Pubcrawl(Person)",
        )
        return Problem(schema, sigma, scenario.instance)

    def test_semantic_equality_through_a_string(self, pubcrawl_scenario):
        problem = self._problem(pubcrawl_scenario)
        wire = json.dumps(problem.to_json())
        decoded = Problem.from_json(json.loads(wire))
        assert decoded.schema.root == problem.schema.root
        assert set(decoded.sigma) == set(problem.sigma)
        assert decoded.instance == problem.instance

    def test_reserialisation_is_stable(self, pubcrawl_scenario):
        problem = self._problem(pubcrawl_scenario)
        first = problem.to_json()
        second = Problem.from_json(json.loads(json.dumps(first))).to_json()
        assert second == first

    def test_no_instance_key_when_absent(self):
        schema = Schema("R(A, B[C])")
        problem = Problem(schema, schema.dependencies("R(A) ->> R(B[C])"))
        document = problem.to_json()
        assert "instance" not in document
        decoded = Problem.from_json(json.loads(json.dumps(document)))
        assert decoded.instance is None
        assert set(decoded.sigma) == set(problem.sigma)
