"""Unit tests for the Figure-3/4-style state diagrams."""

import pytest

from repro import Schema
from repro.core import TraceRecorder, compute_closure
from repro.viz import render_result, render_state, render_trace_states


@pytest.fixture()
def run(example51, example51_encoding):
    recorder = TraceRecorder()
    result = compute_closure(
        example51_encoding, example51.x(), example51.sigma, trace=recorder
    )
    return example51_encoding, recorder, result


class TestRenderState:
    def test_final_state_matches_figure_4(self, run):
        encoding, _, result = run
        text = render_result(result)
        # Figure 4: three boxes — {L4(B)}, {L6(D)}, {L4(C), L6(E)}.
        # (attribute syntax uses "[x" with no space; boxes open with "[ ")
        assert text.count("[ ") == 3
        assert "[ L1(L2[L3[L4(B)]]) ]" in text
        assert "[ L1(L5[L6(D)]) ]" in text
        assert "[ L1(L2[L3[L4(C)]])  L1(L5[L6(E)]) ]" in text
        # ... and the determined attributes are circled.
        assert "(L1(L7(F)))" in text

    def test_initial_state_matches_figure_3(self, run):
        encoding, recorder, _ = run
        text = render_state(encoding, recorder.initial_x, recorder.initial_db)
        # Figure 3: one big complement box (X's own blocks are circled).
        assert text.count("[ ") == 1
        assert "L1(L7(L8[L9(G)]))" in text

    def test_empty_blocks_render(self):
        schema = Schema("R(A, B)")
        result = compute_closure(
            schema.encoding, schema.encoding.full, schema.dependencies()
        )
        text = render_result(result)
        assert "blocks:     (none)" in text

    def test_bottom_state_has_no_circles(self):
        schema = Schema("R(A, B)")
        result = compute_closure(schema.encoding, 0, schema.dependencies())
        text = render_result(result)
        assert "determined: (none)" in text


class TestRenderTraceStates:
    def test_full_trace_rendering(self, run):
        _, recorder, _ = run
        text = render_trace_states(recorder)
        assert "Initial state (Figure 3 view):" in text
        assert "Final state (Figure 4 view):" in text
        # The three effective steps of Example 5.1 appear.
        assert text.count("After ") == 3

    def test_empty_recorder(self):
        assert render_trace_states(TraceRecorder()) == "(empty trace)"
