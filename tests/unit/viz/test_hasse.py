"""Unit tests for the Hasse-diagram builders (Figures 1 and 2)."""

import pytest

from repro.attributes import count_subattributes, parse_attribute as p
from repro.viz import ascii_levels, basis_graph, figure_1, figure_2, figures_3_and_4, hasse_graph, to_dot
from repro.workloads import FIGURE_1_ELEMENTS, figure_1_root


class TestHasseGraph:
    def test_figure_1_node_count(self):
        graph = hasse_graph(figure_1_root())
        assert graph.number_of_nodes() == 11 == count_subattributes(figure_1_root())

    def test_figure_1_labels(self):
        graph = hasse_graph(figure_1_root())
        labels = {data["label"] for _, data in graph.nodes(data=True)}
        assert labels == set(FIGURE_1_ELEMENTS)

    def test_root_and_bottom_flagged(self):
        graph = hasse_graph(p("L[A]"))
        flags = {
            data["label"]: (data["is_root"], data["is_bottom"])
            for _, data in graph.nodes(data=True)
        }
        assert flags["L[A]"] == (True, False)
        assert flags["λ"] == (False, True)

    def test_edges_are_covers_only(self):
        graph = hasse_graph(p("L[A]"))
        labels = {node: data["label"] for node, data in graph.nodes(data=True)}
        edges = {(labels[u], labels[v]) for u, v in graph.edges()}
        assert edges == {("λ", "L[λ]"), ("L[λ]", "L[A]")}

    def test_acyclic(self):
        import networkx as nx

        graph = hasse_graph(p("R(A, L[B])"))
        assert nx.is_directed_acyclic_graph(graph)


class TestBasisGraph:
    def test_figure_2_nodes_and_maximal_flags(self):
        root = p("K[L(M[N(A, B)], C)]")
        graph = basis_graph(root)
        flagged = {
            data["label"]: data["maximal"] for _, data in graph.nodes(data=True)
        }
        assert flagged == {
            "K[λ]": False,
            "K[L(M[λ])]": False,
            "K[L(M[N(A)])]": True,
            "K[L(M[N(B)])]": True,
            "K[L(C)]": True,
        }


class TestRendering:
    def test_to_dot_contains_nodes_and_edges(self):
        graph = hasse_graph(p("L[A]"))
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert "->" in dot
        assert "L[λ]" in dot

    def test_ascii_levels_bottom_first(self):
        text = ascii_levels(hasse_graph(p("L[A]")))
        lines = text.splitlines()
        assert lines[0] == "level 0:  λ"
        assert lines[-1] == "level 2:  L[A]"

    def test_figure_functions_render(self):
        assert "level 0" in figure_1()
        assert "digraph" in figure_1(fmt="dot")
        assert "K[L(M[λ])]" in figure_2()
        assert "Final state:" in figures_3_and_4()
