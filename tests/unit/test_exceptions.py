"""Unit tests for the exception hierarchy — the error-handling contract.

Downstream code catches :class:`ReproError` to own every library
failure; these tests pin the hierarchy and that each error is raised by
the operation documented to raise it.
"""

import pytest

from repro import exceptions as exc
from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute


ALL_ERRORS = (
    exc.AttributeSyntaxError,
    exc.AmbiguousAbbreviationError,
    exc.NotASubattributeError,
    exc.NotAnElementError,
    exc.InvalidValueError,
    exc.IncompatibleValuesError,
    exc.DependencySyntaxError,
    exc.WitnessConstructionError,
    exc.DerivationLimitExceeded,
)


class TestHierarchy:
    @pytest.mark.parametrize("error", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, exc.ReproError)

    def test_value_errors_are_value_errors(self):
        for error in (
            exc.AttributeSyntaxError,
            exc.NotASubattributeError,
            exc.NotAnElementError,
            exc.InvalidValueError,
            exc.IncompatibleValuesError,
            exc.DependencySyntaxError,
        ):
            assert issubclass(error, ValueError)

    def test_ambiguity_is_a_syntax_error(self):
        assert issubclass(exc.AmbiguousAbbreviationError, exc.AttributeSyntaxError)

    def test_runtime_errors(self):
        assert issubclass(exc.WitnessConstructionError, RuntimeError)
        assert issubclass(exc.DerivationLimitExceeded, RuntimeError)


class TestRaisedWhereDocumented:
    def test_attribute_syntax(self):
        with pytest.raises(exc.AttributeSyntaxError):
            p("R(")

    def test_ambiguous_abbreviation(self):
        with pytest.raises(exc.AmbiguousAbbreviationError):
            parse_subattribute("L(A)", p("L(A, A)"))

    def test_not_a_subattribute(self):
        from repro.values import project

        with pytest.raises(exc.NotASubattributeError):
            project(p("A"), p("B"), 1)

    def test_not_an_element(self):
        with pytest.raises(exc.NotAnElementError):
            BasisEncoding(p("R(A, B)")).encode(p("A"))

    def test_invalid_value(self):
        from repro.values import validate_value

        with pytest.raises(exc.InvalidValueError):
            validate_value(p("L[A]"), 3)

    def test_incompatible_values(self):
        from repro.values import OK, amalgamate

        root = p("R(A, B, C)")
        with pytest.raises(exc.IncompatibleValuesError):
            amalgamate(
                root,
                parse_subattribute("R(A, B)", root),
                parse_subattribute("R(B, C)", root),
                (1, 2, OK),
                (OK, 9, 3),  # disagrees on the shared B component
            )

    def test_dependency_syntax(self):
        from repro.dependencies import parse_dependency

        with pytest.raises(exc.DependencySyntaxError):
            parse_dependency("no arrow here", p("R(A, B)"))

    def test_derivation_limit(self):
        from repro.dependencies import DependencySet
        from repro.inference import derive_closure

        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)", "R(B) ->> R(C)"])
        with pytest.raises(exc.DerivationLimitExceeded):
            derive_closure(sigma, max_rounds=1, strict=True)

    def test_one_except_clause_catches_everything(self):
        caught = 0
        for trigger in (
            lambda: p("(("),
            lambda: BasisEncoding(p("A")).encode(p("B")),
        ):
            try:
                trigger()
            except exc.ReproError:
                caught += 1
        assert caught == 2
