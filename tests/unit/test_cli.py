"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestImplies:
    def test_implied_exits_zero(self, capsys):
        code, out, _ = run(
            capsys, "implies", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
        )
        assert code == 0
        assert out.strip() == "implied"

    def test_not_implied_exits_one(self, capsys):
        code, out, _ = run(
            capsys, "implies", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
        )
        assert code == 1
        assert out.strip() == "not implied"

    def test_sigma_file(self, capsys, tmp_path):
        sigma_file = tmp_path / "sigma.txt"
        sigma_file.write_text(f"# the example MVD\n{MVD}\n\n", encoding="utf-8")
        code, out, _ = run(
            capsys, "implies", "--schema", SCHEMA,
            "--sigma-file", str(sigma_file),
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
        )
        assert code == 0
        assert "implied" in out

    def test_missing_sigma_file_errors(self, capsys):
        code, _, err = run(
            capsys, "implies", "--schema", SCHEMA,
            "--sigma-file", "/nonexistent/sigma.txt", "λ -> λ",
        )
        assert code == 2
        assert "error:" in err


class TestStatsFlag:
    def test_implies_with_stats(self, capsys):
        code, out, err = run(
            capsys, "implies", "--stats", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
        )
        assert code == 0
        assert out.strip() == "implied"
        assert "kernel:" in err and "encoding:" in err

    def test_stats_preserves_exit_code(self, capsys):
        code, out, err = run(
            capsys, "implies", "--stats", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
        )
        assert code == 1
        assert "not implied" in out
        assert "reasoner:" in err

    def test_closure_with_stats(self, capsys):
        code, out, err = run(
            capsys, "closure", "--stats", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person)",
        )
        assert code == 0
        assert out.strip() == "Pubcrawl(Person, Visit[λ])"
        assert "kernel:" in err

    def test_basis_with_stats(self, capsys):
        code, out, err = run(
            capsys, "basis", "--stats", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person)",
        )
        assert code == 0
        assert "Pubcrawl(Visit[Drink(Beer)])" in out
        assert "reasoner: computed=1" in err


class TestQueries:
    def test_closure(self, capsys):
        code, out, _ = run(
            capsys, "closure", "--schema", SCHEMA, "-d", MVD, "Pubcrawl(Person)"
        )
        assert code == 0
        assert out.strip() == "Pubcrawl(Person, Visit[λ])"

    def test_basis(self, capsys):
        code, out, _ = run(
            capsys, "basis", "--schema", SCHEMA, "-d", MVD, "Pubcrawl(Person)"
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert "Pubcrawl(Visit[Drink(Beer)])" in lines
        assert "Pubcrawl(Visit[Drink(Pub)])" in lines

    def test_trace(self, capsys):
        code, out, _ = run(
            capsys, "trace", "--schema", SCHEMA, "-d", MVD, "Pubcrawl(Person)"
        )
        assert code == 0
        assert "Initialisation:" in out
        assert "Final state:" in out


class TestDesignCommands:
    def test_keys(self, capsys):
        code, out, _ = run(capsys, "keys", "--schema", "R(A, B)",
                           "-d", "R(A) -> R(B)")
        assert code == 0
        assert out.strip() == "R(A)"

    def test_check4nf_clean(self, capsys):
        code, out, _ = run(capsys, "check4nf", "--schema", "R(A, B)",
                           "-d", "R(A) -> R(A, B)")
        assert code == 0
        assert "in 4NF" in out

    def test_check4nf_violated(self, capsys):
        code, out, _ = run(capsys, "check4nf", "--schema", "R(A, B, C)",
                           "-d", "R(A) ->> R(B)")
        assert code == 1
        assert "NOT in 4NF" in out
        assert "violated by:" in out

    def test_decompose(self, capsys):
        code, out, _ = run(capsys, "decompose", "--schema", SCHEMA, "-d", MVD)
        assert code == 0
        assert "components:" in out
        assert "Pubcrawl(Person, Visit[Drink(Beer)])" in out

    def test_cover(self, capsys):
        code, out, _ = run(
            capsys, "cover", "--schema", "R(A, B, C)",
            "-d", "R(A) -> R(B)", "-d", "R(B) -> R(C)", "-d", "R(A) -> R(C)",
        )
        assert code == 0
        assert len(out.strip().splitlines()) == 2


class TestFiguresAndErrors:
    def test_figures(self, capsys):
        code, out, _ = run(capsys, "figures")
        assert code == 0
        assert "Figure 1" in out and "Final state:" in out

    def test_bad_schema_is_a_clean_error(self, capsys):
        code, _, err = run(capsys, "implies", "--schema", "R(A", "-d", MVD, "x")
        assert code == 2
        assert err.startswith("error:")

    def test_bad_dependency_is_a_clean_error(self, capsys):
        code, _, err = run(
            capsys, "implies", "--schema", "R(A, B)", "-d", "garbage", "R(A) -> R(B)"
        )
        assert code == 2
        assert "error:" in err

    def test_parser_lists_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("implies", "closure", "basis", "trace", "keys",
                        "check4nf", "decompose", "cover", "figures"):
            assert command in text


class TestProblemFileCommands:
    @pytest.fixture()
    def problem_path(self, tmp_path):
        from repro import Schema
        from repro.io import Problem, dump_problem

        schema = Schema("R(A, B, C)")
        sigma = schema.dependencies("R(A) ->> R(B)")
        instance = schema.instance([(1, "b1", "c1"), (1, "b2", "c2")])
        path = tmp_path / "problem.json"
        dump_problem(path, Problem(schema, sigma, instance))
        return path

    def test_check_reports_violation(self, capsys, problem_path):
        code, out, _ = run(capsys, "check", str(problem_path))
        assert code == 1
        assert "VIOLATED" in out

    def test_check_clean_instance(self, capsys, tmp_path):
        from repro import Schema
        from repro.io import Problem, dump_problem

        schema = Schema("R(A, B)")
        sigma = schema.dependencies("R(A) -> R(B)")
        instance = schema.instance([(1, "b"), (2, "b")])
        path = tmp_path / "clean.json"
        dump_problem(path, Problem(schema, sigma, instance))
        code, out, _ = run(capsys, "check", str(path))
        assert code == 0
        assert "ok" in out

    def test_chase_completes_instance(self, capsys, problem_path):
        code, out, err = run(capsys, "chase", str(problem_path))
        assert code == 0
        import json

        chased = json.loads(out)
        assert len(chased) == 4  # the full cross product
        assert "added 2 exchange tuple(s)" in err

    def test_chase_failure_is_reported(self, capsys, tmp_path):
        from repro import Schema
        from repro.io import Problem, dump_problem

        schema = Schema("L[A]")
        sigma = schema.dependencies("λ ->> L[λ]")
        instance = schema.instance([(), (3,)])
        path = tmp_path / "erratum.json"
        dump_problem(path, Problem(schema, sigma, instance))
        code, _, err = run(capsys, "chase", str(path))
        assert code == 1
        assert "error:" in err

    def test_problem_file_without_instance(self, capsys, tmp_path):
        from repro import Schema
        from repro.io import Problem, dump_problem

        schema = Schema("R(A, B)")
        path = tmp_path / "empty.json"
        dump_problem(path, Problem(schema, schema.dependencies()))
        code, _, err = run(capsys, "check", str(path))
        assert code == 2
        assert "no instance" in err

    def test_audit_reports_redundancy(self, capsys, tmp_path):
        from repro import Schema
        from repro.io import Problem, dump_problem

        schema = Schema("R(A, B, C)")
        sigma = schema.dependencies("R(A) -> R(B)")
        instance = schema.instance([(1, "b", "x"), (1, "b", "y")])
        path = tmp_path / "audit.json"
        dump_problem(path, Problem(schema, sigma, instance))
        code, out, _ = run(capsys, "audit", str(path))
        assert code == 1
        assert "π_R(B)" in out

    def test_audit_clean(self, capsys, tmp_path):
        from repro import Schema
        from repro.io import Problem, dump_problem

        schema = Schema("R(A, B)")
        path = tmp_path / "clean_audit.json"
        dump_problem(
            path,
            Problem(schema, schema.dependencies(),
                    schema.instance([(1, 2), (3, 4)])),
        )
        code, out, _ = run(capsys, "audit", str(path))
        assert code == 0
        assert "no redundant occurrences" in out

    def test_figures_dot(self, capsys):
        code, out, _ = run(capsys, "figures", "--dot")
        assert code == 0
        assert out.count("digraph") == 2


class TestObservabilityFlags:
    def test_trace_json_round_trips(self, capsys, tmp_path):
        import json

        from repro.obs import get_observer, validate_trace

        path = tmp_path / "trace.jsonl"
        code, out, _ = run(
            capsys, "implies", "--trace-json", str(path),
            "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
        )
        assert code == 0
        assert out.strip() == "implied"
        counts = validate_trace(str(path))
        assert counts["spans"] >= 1
        assert counts["metrics"] == 1
        with path.open(encoding="utf-8") as handle:
            names = [json.loads(line)["name"] for line in handle
                     if '"event": "span"' in line]
        assert "closure.compute" in names
        # the observer was uninstalled afterwards
        assert get_observer().enabled is False

    def test_metrics_flag_prints_to_stderr(self, capsys):
        code, out, err = run(
            capsys, "closure", "--metrics", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person)",
        )
        assert code == 0
        assert "Visit[λ]" in out
        assert "closure.runs = 1" in err
        assert "closure.passes_per_run" in err

    def test_chase_accepts_trace_json(self, capsys, tmp_path):
        import json

        from repro import Schema
        from repro.io import Problem, dump_problem
        from repro.obs import validate_trace

        schema = Schema("R(A, B, C)")
        sigma = schema.dependencies("R(A) ->> R(B)")
        instance = schema.instance([(1, "b1", "c1"), (1, "b2", "c2")])
        problem = tmp_path / "problem.json"
        dump_problem(problem, Problem(schema, sigma, instance))
        trace = tmp_path / "chase.jsonl"
        code, out, _ = run(capsys, "chase", "--trace-json", str(trace),
                           str(problem))
        assert code == 0
        json.loads(out)  # the chased instance is still valid JSON
        counts = validate_trace(str(trace))
        assert counts["spans"] >= 1

    def test_flags_off_leave_observer_untouched(self, capsys):
        from repro.obs import get_observer

        before = get_observer()
        run(capsys, "implies", "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        assert get_observer() is before


class TestEngineFlag:
    @pytest.mark.parametrize("engine", ["worklist", "naive", "reference"])
    def test_engine_flag_accepted(self, capsys, engine):
        code, out, _ = run(
            capsys, "implies", "--engine", engine,
            "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
        )
        assert code == 0
        assert out.strip() == "implied"

    def test_unknown_engine_is_a_clean_error(self, capsys):
        code, _, err = run(
            capsys, "implies", "--engine", "quantum",
            "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
        )
        assert code == 2
        assert "unknown kernel 'quantum'" in err

    def test_engine_override_does_not_leak(self, capsys):
        from repro.core import get_default_engine

        run(capsys, "implies", "--engine", "naive",
            "--schema", SCHEMA, "-d", MVD,
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        assert get_default_engine().name == "worklist"

    def test_chase_failure_diagnoses_implied_fd(self, capsys, tmp_path):
        from repro import Schema
        from repro.io import Problem, dump_problem

        schema = Schema("L[A]")
        sigma = schema.dependencies("λ ->> L[λ]")
        instance = schema.instance([(), (3,)])
        path = tmp_path / "erratum.json"
        dump_problem(path, Problem(schema, sigma, instance))
        code, _, err = run(capsys, "chase", str(path))
        assert code == 1
        assert "implied by Σ" in err
