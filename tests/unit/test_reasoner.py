"""Unit tests for the query-caching Reasoner."""

import pytest

from repro import Schema
from repro.core import implies
from repro.reasoner import Reasoner


@pytest.fixture()
def schema():
    return Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")


@pytest.fixture()
def reasoner(schema):
    sigma = schema.dependencies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
    return Reasoner(schema, sigma)


class TestConstruction:
    def test_accepts_schema_text(self):
        reasoner = Reasoner("R(A, B)", ["R(A) -> R(B)"])
        assert reasoner.implies("R(A) -> R(B)")

    def test_accepts_dependency_texts(self, schema):
        reasoner = Reasoner(
            schema, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        assert len(reasoner.sigma) == 1


class TestQueries:
    def test_agrees_with_stateless_api(self, reasoner, schema):
        queries = [
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
            "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
            "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
        ]
        for text in queries:
            dependency = schema.dependency(text)
            assert reasoner.implies(dependency) == implies(
                reasoner.sigma, dependency, encoding=schema.encoding
            ), text

    def test_closure_and_basis(self, reasoner, schema):
        closure = reasoner.closure("Pubcrawl(Person)")
        assert schema.show(closure) == "Pubcrawl(Person, Visit[λ])"
        basis = reasoner.dependency_basis("Pubcrawl(Person)")
        assert len(basis) == 4

    def test_is_superkey(self, reasoner):
        assert reasoner.is_superkey("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        assert not reasoner.is_superkey("Pubcrawl(Person)")

    def test_implied_mvd_rhs_masks_join_closed(self, reasoner, schema):
        # Dep(X) is closed under joins of its generators (Prop. 4.10).
        masks = reasoner.implied_mvd_rhs_masks("Pubcrawl(Person)")
        union = 0
        for mask in masks:
            union |= mask
        assert union == schema.encoding.full


class TestCaching:
    def test_repeated_lhs_hits_cache(self, reasoner):
        reasoner.implies("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        reasoner.implies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])")
        reasoner.closure("Pubcrawl(Person)")
        computed, hits = reasoner.cache_info()
        assert computed == 1
        assert hits == 2

    def test_distinct_lhs_computed_separately(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        reasoner.closure("Pubcrawl(Visit[λ])")
        computed, _ = reasoner.cache_info()
        assert computed == 2

    def test_equivalent_lhs_texts_share_entries(self, reasoner):
        # Different spellings of the same subattribute hit one entry.
        reasoner.closure("Pubcrawl(Person)")
        reasoner.closure("Pubcrawl(Person, Visit[Drink(λ, λ)])".replace(
            ", Visit[Drink(λ, λ)]", ""))
        computed, hits = reasoner.cache_info()
        assert (computed, hits) == (1, 1)

    def test_repr(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        assert "cached=1" in repr(reasoner)
