"""Unit tests for the query-caching Reasoner."""

import pytest

from repro import Schema
from repro.core import implies
from repro.reasoner import Reasoner


@pytest.fixture()
def schema():
    return Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")


@pytest.fixture()
def reasoner(schema):
    sigma = schema.dependencies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
    return Reasoner(schema, sigma)


class TestConstruction:
    def test_accepts_schema_text(self):
        reasoner = Reasoner("R(A, B)", ["R(A) -> R(B)"])
        assert reasoner.implies("R(A) -> R(B)")

    def test_accepts_dependency_texts(self, schema):
        reasoner = Reasoner(
            schema, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        assert len(reasoner.sigma) == 1


class TestQueries:
    def test_agrees_with_stateless_api(self, reasoner, schema):
        queries = [
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
            "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
            "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
        ]
        for text in queries:
            dependency = schema.dependency(text)
            assert reasoner.implies(dependency) == implies(
                reasoner.sigma, dependency, encoding=schema.encoding
            ), text

    def test_closure_and_basis(self, reasoner, schema):
        closure = reasoner.closure("Pubcrawl(Person)")
        assert schema.show(closure) == "Pubcrawl(Person, Visit[λ])"
        basis = reasoner.dependency_basis("Pubcrawl(Person)")
        assert len(basis) == 4

    def test_is_superkey(self, reasoner):
        assert reasoner.is_superkey("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        assert not reasoner.is_superkey("Pubcrawl(Person)")

    def test_implied_mvd_rhs_masks_join_closed(self, reasoner, schema):
        # Dep(X) is closed under joins of its generators (Prop. 4.10).
        masks = reasoner.implied_mvd_rhs_masks("Pubcrawl(Person)")
        union = 0
        for mask in masks:
            union |= mask
        assert union == schema.encoding.full


class TestCaching:
    def test_repeated_lhs_hits_cache(self, reasoner):
        reasoner.implies("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        reasoner.implies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])")
        reasoner.closure("Pubcrawl(Person)")
        computed, hits = reasoner.cache_info()
        assert computed == 1
        assert hits == 2

    def test_distinct_lhs_computed_separately(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        reasoner.closure("Pubcrawl(Visit[λ])")
        computed, _ = reasoner.cache_info()
        assert computed == 2

    def test_equivalent_lhs_texts_share_entries(self, reasoner):
        # Different spellings of the same subattribute hit one entry.
        reasoner.closure("Pubcrawl(Person)")
        reasoner.closure("Pubcrawl(Person, Visit[Drink(λ, λ)])".replace(
            ", Visit[Drink(λ, λ)]", ""))
        computed, hits = reasoner.cache_info()
        assert (computed, hits) == (1, 1)

    def test_repr(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        assert "cached=1" in repr(reasoner)

    def test_cache_info_is_two_tuple_compatible(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        info = reasoner.cache_info()
        assert info == (1, 0)
        computed, hits = info
        assert (computed, hits) == (1, 0)
        assert info.computed == 1 and info.hits == 0

    def test_cache_info_extras(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        info = reasoner.cache_info()
        assert info.evictions == 0
        assert info.maxsize is None
        assert info.kernel.runs == 1
        assert "pseudo_difference" in info.encoding

    def test_cache_clear(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        reasoner.cache_clear()
        info = reasoner.cache_info()
        assert info == (0, 0)
        assert info.kernel.runs == 0
        reasoner.closure("Pubcrawl(Person)")
        assert reasoner.cache_info() == (1, 0)

    def test_cache_clear_can_reach_the_encoding(self, reasoner):
        reasoner.closure("Pubcrawl(Person)")
        reasoner.cache_clear(encoding=True)
        assert reasoner.schema.encoding.cache_info().hit_rate() == 0.0

    def test_describe_stats(self, reasoner):
        reasoner.implies("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        text = reasoner.describe_stats()
        assert "reasoner: computed=1" in text
        assert "kernel:" in text and "encoding:" in text


class TestBoundedCache:
    LHS = ["Pubcrawl(Person)", "Pubcrawl(Visit[λ])",
           "Pubcrawl(Visit[Drink(Beer)])", "Pubcrawl(Visit[Drink(Pub)])"]

    def make(self, schema, maxsize):
        sigma = schema.dependencies(
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
        return Reasoner(schema, sigma, maxsize=maxsize)

    def test_eviction_is_lru(self, schema):
        reasoner = self.make(schema, maxsize=2)
        reasoner.closure(self.LHS[0])
        reasoner.closure(self.LHS[1])
        reasoner.closure(self.LHS[0])    # refresh: LHS[1] is now oldest
        reasoner.closure(self.LHS[2])    # evicts LHS[1]
        info = reasoner.cache_info()
        assert info == (2, 1)
        assert info.evictions == 1
        reasoner.closure(self.LHS[0])    # still cached
        assert reasoner.cache_info().hits == 2
        reasoner.closure(self.LHS[1])    # was evicted: recomputed
        assert reasoner.cache_info().evictions == 2

    def test_unbounded_by_default(self, schema):
        reasoner = self.make(schema, maxsize=None)
        for x in self.LHS:
            reasoner.closure(x)
        info = reasoner.cache_info()
        assert info == (len(self.LHS), 0)
        assert info.evictions == 0

    def test_maxsize_one(self, schema):
        reasoner = self.make(schema, maxsize=1)
        for x in self.LHS:
            reasoner.closure(x)
        info = reasoner.cache_info()
        assert info.computed == 1
        assert info.evictions == len(self.LHS) - 1

    def test_invalid_maxsize_rejected(self, schema):
        with pytest.raises(ValueError):
            self.make(schema, maxsize=0)

    def test_results_identical_after_eviction(self, schema):
        bounded = self.make(schema, maxsize=1)
        unbounded = self.make(schema, maxsize=None)
        for x in self.LHS + list(reversed(self.LHS)):
            assert bounded.closure(x) == unbounded.closure(x)
