"""Unit tests for exact-agreement pair realisation (Section 4.2)."""

import pytest

from repro.attributes import (
    EnumeratedDomain,
    Universe,
    parse_attribute as p,
    subattributes,
    is_subattribute,
)
from repro.exceptions import NotASubattributeError
from repro.values import is_valid_value, project
from repro.witness import PairRealizer


def agreement_set(root, first, second):
    return {
        element
        for element in subattributes(root)
        if project(root, element, first) == project(root, element, second)
    }


def ideal(root, c):
    return {element for element in subattributes(root) if is_subattribute(element, c)}


class TestRealizeExactness:
    def test_every_agreement_element_realisable(self, small_roots):
        # For every root and every C ∈ Sub(root): the realised pair agrees
        # on exactly the principal ideal of C.
        realizer = PairRealizer()
        for root in small_roots:
            for c in subattributes(root):
                first, second = realizer.realize(root, c)
                assert is_valid_value(root, first)
                assert is_valid_value(root, second)
                assert agreement_set(root, first, second) == ideal(root, c), (
                    str(root),
                    str(c),
                )

    def test_total_agreement_gives_equal_values(self):
        realizer = PairRealizer()
        root = p("R(A, L[B])")
        first, second = realizer.realize(root, root)
        assert first == second

    def test_bottom_agreement_gives_fully_different_values(self):
        realizer = PairRealizer()
        root = p("R(A, B)")
        first, second = realizer.realize(root, p("R(λ, λ)"))
        assert first[0] != second[0]
        assert first[1] != second[1]

    def test_list_length_agreement(self):
        # C = L[λ]: same length, different content.
        realizer = PairRealizer()
        root = p("L[A]")
        first, second = realizer.realize(root, p("L[λ]"))
        assert len(first) == len(second)
        assert first != second

    def test_list_disagreement_via_lengths(self):
        realizer = PairRealizer()
        root = p("L[A]")
        first, second = realizer.realize(root, p("λ"))
        assert len(first) != len(second)

    def test_rejects_non_subattribute(self):
        with pytest.raises(NotASubattributeError):
            PairRealizer().realize(p("L[A]"), p("A"))


class TestConstants:
    def test_fresh_constants_never_repeat(self):
        realizer = PairRealizer()
        a = p("A")
        drawn = [realizer.fresh(a) for _ in range(20)]
        assert len(set(drawn)) == 20

    def test_universe_supplies_constants(self):
        universe = Universe({"Beer": EnumeratedDomain(["Lübzer", "Kindl"])})
        realizer = PairRealizer(universe)
        beer = p("Beer")
        assert realizer.fresh(beer) == "Lübzer"
        assert realizer.fresh(beer) == "Kindl"

    def test_exhausted_universe_fails_loudly(self):
        universe = Universe({"Beer": EnumeratedDomain(["only"])})
        realizer = PairRealizer(universe)
        realizer.fresh(p("Beer"))
        with pytest.raises(ValueError):
            realizer.fresh(p("Beer"))

    def test_make_produces_valid_values(self, small_roots):
        realizer = PairRealizer()
        for root in small_roots:
            assert is_valid_value(root, realizer.make(root))

    def test_longer_lists_preserve_exactness(self):
        realizer = PairRealizer(list_length=3)
        root = p("L[R(A, B)]")
        c = p("L[R(A, λ)]")
        first, second = realizer.realize(root, c)
        assert len(first) == len(second) == 3
        assert agreement_set(root, first, second) == ideal(root, c)

    def test_list_length_must_be_positive(self):
        with pytest.raises(ValueError):
            PairRealizer(list_length=0)
