"""Unit tests for the block-combination witness construction (§4.2)."""

import pytest

from repro.attributes import (
    BasisEncoding,
    parse_attribute as p,
    parse_subattribute,
    subattributes,
)
from repro.core import implies
from repro.dependencies import FD, MVD, DependencySet, satisfies, satisfies_all
from repro.values import project
from repro.witness import build_witness


def s(text, root):
    return parse_subattribute(text, root)


class TestPubcrawlWitness:
    @pytest.fixture()
    def witness(self, pubcrawl_scenario):
        return build_witness(
            pubcrawl_scenario.sigma(),
            s("Pubcrawl(Person)", pubcrawl_scenario.root),
        )

    def test_satisfies_sigma(self, witness, pubcrawl_scenario):
        assert satisfies_all(
            pubcrawl_scenario.root, witness.instance, pubcrawl_scenario.sigma()
        )

    def test_two_free_blocks_give_four_tuples(self, witness):
        assert len(witness.free_blocks) == 2
        assert len(witness.instance) == 4

    def test_violates_non_implied_fds(self, witness, pubcrawl_scenario):
        from repro.dependencies import parse_dependency

        for text in pubcrawl_scenario.failing_fd_texts:
            dep = parse_dependency(text, pubcrawl_scenario.root)
            assert witness.violates(dep)

    def test_seed_tuples_in_instance_agree_on_closure(self, witness,
                                                      pubcrawl_scenario):
        root = pubcrawl_scenario.root
        closure = witness.closure_result.closure
        assert project(root, closure, witness.t1) == project(
            root, closure, witness.t2
        )


class TestArmstrongProperty:
    """The witness decides every dependency with its left-hand side."""

    @pytest.mark.parametrize(
        "root_text,sigma_texts,x_text",
        [
            ("R(A, B)", [], "R(A)"),
            ("R(A, L[B])", ["R(A) ->> R(L[λ])"], "R(A)"),
            ("R(A, B, C)", ["R(A) ->> R(B)"], "R(A)"),
            ("R(A, B, C)", ["R(A) -> R(B)"], "R(A)"),
            ("L[R(A, B)]", [], "L[λ]"),
            ("R(A, L[D(B, C)])", ["R(A) ->> R(L[D(B)])"], "R(A)"),
            ("R(L1[A], L2[B])", ["λ ->> R(L1[A])"], "λ"),
        ],
    )
    def test_semantic_equals_syntactic(self, root_text, sigma_texts, x_text):
        root = p(root_text)
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(root, sigma_texts)
        x = s(x_text, root)
        witness = build_witness(sigma, x, encoding=enc)
        for y in subattributes(root):
            for dep in (FD(x, y), MVD(x, y)):
                semantic = satisfies(root, witness.instance, dep)
                syntactic = implies(sigma, dep, encoding=enc)
                assert semantic == syntactic, dep.display(root)


class TestStructure:
    def test_superkey_lhs_gives_singleton_instance(self):
        root = p("R(A, B)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        witness = build_witness(sigma, s("R(A)", root))
        assert witness.free_blocks == ()
        assert len(witness.instance) == 1

    def test_all_tuples_are_valid_values(self, pubcrawl_scenario):
        from repro.values import is_valid_value

        witness = build_witness(
            pubcrawl_scenario.sigma(), s("Pubcrawl(Person)", pubcrawl_scenario.root)
        )
        assert all(
            is_valid_value(pubcrawl_scenario.root, value)
            for value in witness.instance
        )

    def test_root_property(self, pubcrawl_scenario):
        witness = build_witness(
            pubcrawl_scenario.sigma(), s("Pubcrawl(Person)", pubcrawl_scenario.root)
        )
        assert witness.root == pubcrawl_scenario.root

    def test_instance_size_is_power_of_two(self):
        root = p("R(A, B, C, D)")
        sigma = DependencySet(root)
        witness = build_witness(sigma, s("R(A)", root))
        assert len(witness.free_blocks) == 1  # single complement block
        assert len(witness.instance) == 2
