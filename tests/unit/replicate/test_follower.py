"""The Replicator: apply/gap/reset discipline, fences, live streaming.

Pure-logic tests drive ``_apply``/``_apply_reset`` with fakes; the
streaming tests run a real primary + follower pair inside one
``asyncio.run`` (same no-plugin idiom as the server unit tests).
"""

import asyncio

import pytest

from repro.replicate import Replicator
from repro.serve import (
    AsyncClient,
    ErrorCode,
    ReasoningServer,
    ServeConfig,
    ServerError,
)
from repro.store.wal import StoreError, WalRecord

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
IMPLIED_FD = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"


class FakeManager:
    """Just enough of SessionManager for apply/reset bookkeeping."""

    def __init__(self):
        self.ops = []
        self._names = []

    def names(self):
        return tuple(self._names)

    def open(self, name, schema, dependencies=(), *, engine=None,
             replace=False, now=None):
        self.ops.append(("open", name))
        self._names.append(name)

    def close(self, name, now=None):
        self.ops.append(("close", name))
        self._names.remove(name)

    def restore(self, name, schema, dependencies, *, engine, epoch,
                generation):
        self.ops.append(("restore", name, generation))
        self._names.append(name)

    def snapshot_state(self):
        return {}


def record(seq, name="s"):
    return WalRecord(seq, "open", {"name": f"{name}{seq}", "schema": "R(A)"})


class TestApply:
    def test_applies_in_order_and_resolves_waiters(self):
        replicator = Replicator(FakeManager(), None, "127.0.0.1", 1)
        assert replicator._apply([record(1), record(2)]) == 2
        assert replicator.applied_seq == 2
        assert replicator.manager.ops == [("open", "s1"), ("open", "s2")]

    def test_duplicates_are_skipped(self):
        replicator = Replicator(FakeManager(), None, "127.0.0.1", 1)
        replicator.applied_seq = 2
        assert replicator._apply([record(1), record(2), record(3)]) == 1
        assert replicator.manager.ops == [("open", "s3")]

    def test_a_gap_is_divergence(self):
        replicator = Replicator(FakeManager(), None, "127.0.0.1", 1)
        with pytest.raises(StoreError, match="replication gap"):
            replicator._apply([record(2)])

    @pytest.mark.parametrize("reset", [
        None, [], {}, {"last_seq": 3}, {"sessions": {}},
        {"last_seq": True, "sessions": {}},
        {"last_seq": "3", "sessions": {}},
        {"last_seq": 3, "sessions": []},
    ])
    def test_malformed_resets_raise(self, reset):
        replicator = Replicator(FakeManager(), None, "127.0.0.1", 1)
        with pytest.raises(ValueError, match="malformed replication reset"):
            replicator._apply_reset(reset)

    def test_reset_rebuilds_the_manager(self):
        manager = FakeManager()
        manager._names = ["stale"]
        replicator = Replicator(manager, None, "127.0.0.1", 1)
        replicator._apply_reset({"last_seq": 9, "sessions": {
            "pub": {"schema": SCHEMA, "dependencies": [MVD],
                    "engine": "worklist", "epoch": "e1", "generation": 4}}})
        assert replicator.applied_seq == 9
        assert replicator.resets == 1
        assert manager.ops == [("close", "stale"), ("restore", "pub", 4)]

    def test_status_payload(self):
        replicator = Replicator(FakeManager(), None, "h", 7, follower_id="f")
        status = replicator.status()
        assert status["primary"] == "h:7"
        assert status["follower_id"] == "f"
        assert status["state"] == "connecting"
        assert status["applied_seq"] == 0
        assert "error" not in status


class TestWaitForSeq:
    def test_already_applied_returns_immediately(self):
        async def scenario():
            replicator = Replicator(FakeManager(), None, "127.0.0.1", 1)
            replicator.applied_seq = 5
            assert await replicator.wait_for_seq(5, timeout=0.0)

        asyncio.run(scenario())

    def test_wakes_when_the_tail_advances(self):
        async def scenario():
            replicator = Replicator(FakeManager(), None, "127.0.0.1", 1)
            waiting = asyncio.ensure_future(
                replicator.wait_for_seq(1, timeout=5.0))
            await asyncio.sleep(0.01)
            replicator._apply([record(1)])
            assert await waiting

        asyncio.run(scenario())

    def test_times_out_when_it_never_arrives(self):
        async def scenario():
            replicator = Replicator(FakeManager(), None, "127.0.0.1", 1)
            assert not await replicator.wait_for_seq(1, timeout=0.02)
            assert replicator._waiters == []

        asyncio.run(scenario())


def follower_config(tmp_path, primary_address, **kwargs):
    return ServeConfig(port=0, data_dir=str(tmp_path / "follower"),
                       replicate_from=primary_address,
                       replica_id="unit-f1", replicate_poll=0.2,
                       fence_wait=2.0, **kwargs)


async def caught_up(server, seq, budget=5.0):
    deadline = asyncio.get_running_loop().time() + budget
    while server.replicator.applied_seq < seq:
        if asyncio.get_running_loop().time() > deadline:  # pragma: no cover
            raise AssertionError(
                f"follower stuck at {server.replicator.applied_seq}")
        await asyncio.sleep(0.01)


class TestStreaming:
    def test_follower_tails_applies_and_serves_reads(self, tmp_path):
        async def scenario():
            primary_cfg = ServeConfig(port=0, idle_ttl=None,
                                      data_dir=str(tmp_path / "primary"))
            async with ReasoningServer(primary_cfg) as primary:
                host, port = primary.address
                async with ReasoningServer(
                        follower_config(tmp_path, f"{host}:{port}")) as follower:
                    f_host, f_port = follower.address
                    async with await AsyncClient.connect(host, port) as up:
                        opened = await up.open("pub", SCHEMA, [MVD])
                        assert opened["seq"] == 1
                        # a no-op add neither logs nor carries a fence
                        rededup = await up.add("pub", MVD)
                        assert not rededup["added"] and "seq" not in rededup
                        verdict = await up.add(
                            "pub", "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
                        assert verdict["seq"] == 2
                        await caught_up(follower, verdict["seq"])
                    async with await AsyncClient.connect(f_host,
                                                         f_port) as down:
                        # an unfenced and a fenced read both answer locally
                        assert await down.implies("pub", IMPLIED_FD)
                        fenced = await down.request(
                            "implies", session="pub", dependency=IMPLIED_FD,
                            min_seq=verdict["seq"])
                        assert fenced["implied"] is True

                        # mutations are refused with the primary's address
                        with pytest.raises(ServerError) as info:
                            await down.add("pub", MVD)
                        assert info.value.code == ErrorCode.NOT_PRIMARY
                        assert f"{host}:{port}" in info.value.message

                        # and the fence fails typed once it cannot be met
                        follower.config.fence_wait = 0.05
                        with pytest.raises(ServerError) as info:
                            await down.request("implies", session="pub",
                                               dependency=IMPLIED_FD,
                                               min_seq=10_000)
                        assert info.value.code == ErrorCode.REPLICA_BEHIND

        asyncio.run(scenario())

    def test_cold_follower_bootstraps_via_reset(self, tmp_path):
        async def scenario():
            primary_cfg = ServeConfig(port=0, idle_ttl=None,
                                      data_dir=str(tmp_path / "primary"))
            async with ReasoningServer(primary_cfg) as primary:
                host, port = primary.address
                async with await AsyncClient.connect(host, port) as up:
                    await up.open("pub", SCHEMA, [MVD])
                    await up.add("pub",
                                 "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
                # compaction folds seqs 1..2 into the snapshot: a cold
                # subscriber can no longer be served a contiguous tail
                primary.store.compact(primary.sessions.snapshot_state())

                follower_cfg = ServeConfig(port=0,
                                           replicate_from=f"{host}:{port}",
                                           replica_id="unit-cold",
                                           replicate_poll=0.2)
                async with ReasoningServer(follower_cfg) as follower:
                    await caught_up(follower, 2)
                    assert follower.replicator.resets == 1
                    f_host, f_port = follower.address
                    async with await AsyncClient.connect(f_host,
                                                         f_port) as down:
                        assert await down.implies("pub", IMPLIED_FD)

        asyncio.run(scenario())

    def test_follower_survives_a_primary_restart(self, tmp_path):
        async def scenario():
            primary_dir = str(tmp_path / "primary")
            primary_cfg = ServeConfig(port=0, idle_ttl=None,
                                      data_dir=primary_dir)
            async with ReasoningServer(primary_cfg) as primary:
                host, port = primary.address
                async with await AsyncClient.connect(host, port) as up:
                    await up.open("pub", SCHEMA, [MVD])
                follower_cfg = follower_config(tmp_path, f"{host}:{port}",
                                               idle_ttl=None)
                async with ReasoningServer(follower_cfg) as follower:
                    await caught_up(follower, 1)
                    await primary.shutdown()
                    await asyncio.sleep(0.05)
                    assert follower.replicator.state in ("connecting",
                                                         "streaming")
                    # reads keep answering while the primary is away
                    f_host, f_port = follower.address
                    async with await AsyncClient.connect(f_host,
                                                         f_port) as down:
                        assert await down.implies("pub", MVD)

                    restarted = ReasoningServer(ServeConfig(
                        host=host, port=port, idle_ttl=None,
                        data_dir=primary_dir))
                    try:
                        await restarted.start()
                        async with await AsyncClient.connect(host,
                                                             port) as up:
                            await up.add(
                                "pub",
                                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
                        await caught_up(follower, 2)
                        assert follower.replicator.applied_seq == 2
                    finally:
                        await restarted.shutdown()

        asyncio.run(scenario())

    def test_subscribe_against_an_ephemeral_primary_breaks_typed(self):
        async def scenario():
            # no --data-dir: nothing to ship; the follower must not spin
            async with ReasoningServer(ServeConfig(port=0)) as primary:
                host, port = primary.address
                follower_cfg = ServeConfig(port=0,
                                           replicate_from=f"{host}:{port}",
                                           replicate_poll=0.2)
                async with ReasoningServer(follower_cfg) as follower:
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while follower.replicator.state != "broken":
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.01)
                    assert "WAL" in follower.replicator.error

        asyncio.run(scenario())
