"""Primary-side pure pieces: batch codec and the follower lag table."""

import pytest

from repro.replicate import decode_batch, encode_batch
from repro.replicate.primary import FollowerTable
from repro.store.wal import WalRecord


class TestBatchCodec:
    def test_round_trip(self):
        records = [WalRecord(1, "open", {"name": "s", "schema": "R(A)"}),
                   WalRecord(2, "add", {"session": "s",
                                        "dependency": "R(A) -> R(A)"})]
        assert decode_batch(encode_batch(records)) == records

    def test_empty(self):
        assert encode_batch([]) == []
        assert decode_batch([]) == []

    @pytest.mark.parametrize("payload", [
        None,
        "nope",
        {"seq": 1},
        [None],
        [{"op": "add", "params": {}}],                     # missing seq
        [{"seq": True, "op": "add", "params": {}}],        # bool is not int
        [{"seq": "1", "op": "add", "params": {}}],
        [{"seq": 1, "op": 7, "params": {}}],
        [{"seq": 1, "op": "add", "params": []}],
    ])
    def test_malformed_batches_raise(self, payload):
        with pytest.raises(ValueError):
            decode_batch(payload)


class TestFollowerTable:
    def make(self):
        clock = {"now": 100.0}
        table = FollowerTable(clock=lambda: clock["now"])
        return table, clock

    def test_seen_and_ack(self):
        table, clock = self.make()
        table.seen("f1", 0)
        assert len(table) == 1
        assert table.ack("f1", 3) == 3
        clock["now"] = 100.5
        stats = table.stats(last_seq=5)
        assert stats == {"f1": {"acked_seq": 3, "lag": 2, "age_s": 0.5}}

    def test_ack_keeps_the_high_mark(self):
        table, _ = self.make()
        table.ack("f1", 5)
        assert table.ack("f1", 3) == 5  # a late duplicate never regresses
        assert table.stats(9)["f1"]["acked_seq"] == 5

    def test_anonymous_followers_are_not_tracked(self):
        table, _ = self.make()
        table.seen(None, 0)
        table.seen("", 4)
        assert len(table) == 0

    def test_polled_but_never_acked(self):
        table, _ = self.make()
        table.seen("quiet", 2)
        stats = table.stats(last_seq=2)
        assert stats["quiet"] == {"acked_seq": 0, "lag": 2, "age_s": None}

    def test_min_acked_is_the_compaction_horizon(self):
        table, _ = self.make()
        assert table.min_acked(default=7) == 7
        table.ack("fast", 9)
        table.ack("slow", 2)
        assert table.min_acked() == 2

    def test_lag_never_negative(self):
        table, _ = self.make()
        table.ack("ahead", 9)  # e.g. status taken mid-compaction
        assert table.stats(last_seq=3)["ahead"]["lag"] == 0

    def test_stats_sorted_by_name(self):
        table, _ = self.make()
        table.ack("zeta", 1)
        table.ack("alpha", 1)
        assert list(table.stats(1)) == ["alpha", "zeta"]
