"""RoutedClient routing: registry-derived fan-out, fences, failover.

Every test injects a fake per-node client factory, so routing decisions
are observable as ``(address, op, params)`` tuples without sockets.
"""

import pytest

from repro.replicate import RoutedClient, parse_address
from repro.serve.client import ServerError
from repro.serve.resilience import CircuitOpenError


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("example.com:7474") == ("example.com", 7474)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address(":7474") == ("127.0.0.1", 7474)

    @pytest.mark.parametrize("text", ["", "7474", "host:", "host:port",
                                      "host:74x4"])
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError, match="expected HOST:PORT"):
            parse_address(text)


class FakeNode:
    """One scripted node: pops canned outcomes, records every request."""

    def __init__(self, address, script):
        self.address = address
        self.script = script          # list of dicts or exceptions
        self.calls = []               # (op, params) in arrival order
        self.closed = False

    def request(self, op, **params):
        self.calls.append((op, dict(params)))
        outcome = self.script.pop(0) if self.script else {}
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def close(self):
        self.closed = True


def make(replica_scripts, primary_script=None, **kwargs):
    """A routed client over fakes; returns (client, [primary, *replicas])."""
    nodes = []

    def connect(host, port, **_):
        node = FakeNode((host, port), scripts.pop(0))
        nodes.append(node)
        return node

    scripts = [list(primary_script or [])] + [list(s)
                                              for s in replica_scripts]
    replicas = [("127.0.0.1", 9100 + i) for i in range(len(replica_scripts))]
    client = RoutedClient(("127.0.0.1", 9000), replicas,
                          connect=connect, **kwargs)
    return client, nodes


def behind():
    return ServerError("replica_behind", "tail is behind the fence")


class TestRouting:
    def test_mutations_and_admin_ops_go_to_the_primary(self):
        client, nodes = make([[], []],
                             primary_script=[{"added": True, "seq": 4}, {}, {}])
        client.add("s", "R(A) -> R(B)")
        client.ping()
        client.replicate_status()
        primary, r1, r2 = nodes
        assert [op for op, _ in primary.calls] == ["add", "ping",
                                                   "replicate.status"]
        assert r1.calls == [] and r2.calls == []

    def test_reads_fan_out_round_robin(self):
        client, nodes = make([[{"implied": True}] * 4,
                              [{"implied": True}] * 4])
        for _ in range(4):
            assert client.implies("s", "R(A) -> R(B)") is True
        _, r1, r2 = nodes
        assert len(r1.calls) == 2 and len(r2.calls) == 2
        assert client.counters["routed.replica_reads"] == 4

    def test_single_node_serves_everything(self):
        client, nodes = make([], primary_script=[{"implied": False}])
        assert client.implies("s", "x") is False
        assert nodes[0].calls[0][0] == "implies"

    def test_mutation_seq_becomes_the_read_fence(self):
        client, nodes = make([[{"implied": True}]],
                             primary_script=[{"added": True, "seq": 7}])
        client.add("s", "R(A) -> R(B)")
        assert client.min_seq == 7
        client.implies("s", "R(A) -> R(B)")
        _, r1 = nodes
        assert r1.calls[0][1]["min_seq"] == 7

    def test_fence_disabled_sends_no_min_seq(self):
        client, nodes = make([[{"implied": True}]],
                             primary_script=[{"added": True, "seq": 7}],
                             fence=False)
        client.add("s", "d")
        assert client.min_seq == 0
        client.implies("s", "d")
        assert "min_seq" not in nodes[1].calls[0][1]

    def test_ephemeral_primary_acks_carry_no_seq(self):
        client, _ = make([[]], primary_script=[{"added": True}])
        client.add("s", "d")
        assert client.min_seq == 0


class TestRedirects:
    def test_replica_behind_falls_through_to_the_primary(self):
        client, nodes = make([[behind()]],
                             primary_script=[{"implied": True}])
        client.min_seq = 9
        assert client.implies("s", "d") is True
        primary, r1 = nodes
        assert r1.calls[0][1]["min_seq"] == 9
        # the primary defines the fence — it must never receive one
        assert "min_seq" not in primary.calls[0][1]
        assert client.counters["routed.redirects"] == 1
        assert client.counters["routed.primary_reads"] == 1

    def test_unknown_session_on_a_lagging_replica_redirects(self):
        client, _ = make([[ServerError("unknown_session", "no session 's'")]],
                         primary_script=[{"implied": True}])
        assert client.implies("s", "d") is True
        assert client.counters["routed.redirects"] == 1

    def test_non_redirect_errors_surface_immediately(self):
        # the round-robin cursor starts at the second replica
        client, nodes = make([[], [ServerError("bad_params", "nope")]],
                             primary_script=[])
        with pytest.raises(ServerError, match="nope"):
            client.implies("s", "d")
        assert nodes[0].calls == []  # never reached the primary

    def test_redirect_from_the_primary_leg_is_terminal(self):
        client, _ = make([], primary_script=[behind()])
        with pytest.raises(ServerError, match="behind"):
            client.implies("s", "d")


class TestFailover:
    def test_open_circuit_skips_the_replica(self):
        # the first replica tried (round-robin starts at the second)
        # has an open circuit; the read lands on the other one
        client, nodes = make(
            [[{"implied": True}],
             [CircuitOpenError("open", retry_after=1.0)]])
        assert client.implies("s", "d") is True
        assert client.counters["routed.failover"] == 1
        assert client.counters["routed.replica_reads"] == 1
        assert nodes[0].calls == []  # primary untouched

    def test_dead_replicas_fall_through_to_the_primary(self):
        client, _ = make([[ConnectionError("down")], [TimeoutError()]],
                         primary_script=[{"implied": True}])
        assert client.implies("s", "d") is True
        assert client.counters["routed.failover"] == 2
        assert client.counters["routed.primary_reads"] == 1

    def test_everything_down_raises_the_last_error(self):
        client, _ = make([[ConnectionError("r down")],
                          [ConnectionError("r down")]],
                         primary_script=[ConnectionError("p down")])
        with pytest.raises(ConnectionError, match="p down"):
            client.implies("s", "d")


class TestLifecycle:
    def test_string_addresses_are_parsed(self):
        client, _ = make([])
        assert client.addresses == (("127.0.0.1", 9000),)
        nodes = []
        routed = RoutedClient("h1:1", ["h2:2", ":3"],
                              connect=lambda h, p, **_: nodes.append((h, p)))
        assert routed.addresses == (("h1", 1), ("h2", 2), ("127.0.0.1", 3))

    def test_context_manager_closes_every_node(self):
        with make([[], []])[0] as client:
            pass
        assert all(node.closed for node in [client.primary, *client.replicas])
