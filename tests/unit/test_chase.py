"""Unit tests for the nested-MVD chase."""

import pytest

from repro.attributes import parse_attribute as p
from repro.chase import ChaseFailure, ChaseResult, chase
from repro.dependencies import DependencySet, parse_dependency, satisfies_all
from repro.exceptions import ReproError


@pytest.fixture()
def flat_root():
    return p("R(A, B, C)")


@pytest.fixture()
def flat_sigma(flat_root):
    return DependencySet.parse(flat_root, ["R(A) ->> R(B)"])


class TestBasicChase:
    def test_completes_missing_exchange_tuples(self, flat_root, flat_sigma):
        result = chase(flat_root, {(1, "b1", "c1"), (1, "b2", "c2")}, flat_sigma)
        assert result.instance == {
            (1, "b1", "c1"), (1, "b2", "c2"), (1, "b1", "c2"), (1, "b2", "c1"),
        }
        assert len(result.added) == 2
        assert not result.was_satisfied

    def test_satisfied_instance_unchanged(self, flat_root, flat_sigma):
        instance = {(1, "b", "c"), (2, "b", "c")}
        result = chase(flat_root, instance, flat_sigma)
        assert result.instance == instance
        assert result.was_satisfied

    def test_result_satisfies_sigma(self, flat_root, flat_sigma):
        result = chase(flat_root, {(1, "b1", "c1"), (1, "b2", "c2")}, flat_sigma)
        assert satisfies_all(flat_root, result.instance, flat_sigma)

    def test_idempotent(self, flat_root, flat_sigma):
        first = chase(flat_root, {(1, "b1", "c1"), (1, "b2", "c2")}, flat_sigma)
        second = chase(flat_root, first.instance, flat_sigma)
        assert second.instance == first.instance
        assert second.was_satisfied

    def test_cascading_mvds(self, flat_root):
        sigma = DependencySet.parse(
            flat_root, ["R(A) ->> R(B)", "λ ->> R(A)"]
        )
        seed = {(1, "b1", "c1"), (1, "b2", "c2"), (2, "b3", "c3")}
        result = chase(flat_root, seed, sigma)
        assert satisfies_all(flat_root, result.instance, sigma)
        assert result.rounds >= 2  # the second MVD re-triggers the first


class TestListChase:
    def test_pubcrawl_partial_instance_completed(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        sigma = pubcrawl_scenario.sigma()
        # Drop one of Klaus-Dieter's four combination tuples: the other
        # three still witness both beer orders and both pub orders, so
        # the chase must regenerate exactly the dropped combination.
        # (Dropping a SVEN tuple would leave a singleton group, which
        # satisfies the MVD trivially — no chase obligation.)
        partial = set(pubcrawl_scenario.instance)
        partial.remove(
            (
                "Klaus-Dieter",
                (("Kölsch", "Highflyers"), ("Bönnsch", "Deanos"), ("Guiness", "3Bar")),
            )
        )
        result = chase(root, partial, sigma)
        assert result.instance == pubcrawl_scenario.instance
        assert len(result.added) == 1

    def test_length_conflict_is_an_fd_failure(self):
        # The erratum instance: {[], [3]} with λ ↠ L[λ] cannot be chased —
        # the exchange tuple does not exist in dom(L[A]).
        root = p("L[A]")
        sigma = DependencySet.parse(root, ["λ ->> L[λ]"])
        with pytest.raises(ChaseFailure) as excinfo:
            chase(root, {(), (3,)}, sigma)
        assert excinfo.value.dependency.lhs == p("λ")

    def test_equal_lengths_chase_fine(self):
        root = p("L[R(A, B)]")
        sigma = DependencySet.parse(root, ["λ ->> L[R(A)]"])
        seed = {((1, "x"),), ((2, "y"),)}
        result = chase(root, seed, sigma)
        assert satisfies_all(root, result.instance, sigma)
        assert ((1, "y"),) in result.instance
        assert ((2, "x"),) in result.instance


class TestFDHandling:
    def test_initial_fd_violation_reported(self, flat_root):
        sigma = DependencySet.parse(flat_root, ["R(A) -> R(B)"])
        with pytest.raises(ChaseFailure) as excinfo:
            chase(flat_root, {(1, "b1", "c"), (1, "b2", "c")}, sigma)
        assert excinfo.value.dependency == parse_dependency(
            "R(A) -> R(B)", flat_root
        )
        assert len(excinfo.value.pair) == 2

    def test_chase_exposed_fd_violation(self, flat_root):
        # The MVD exchange creates tuples that break C -> B.
        sigma = DependencySet.parse(
            flat_root, ["R(A) ->> R(B)", "R(C) -> R(B)"]
        )
        seed = {(1, "b1", "c1"), (1, "b2", "c2")}
        with pytest.raises(ChaseFailure):
            chase(flat_root, seed, sigma)

    def test_compatible_fd_passes(self, flat_root):
        sigma = DependencySet.parse(
            flat_root, ["R(A) ->> R(B)", "R(A) -> R(C)"]
        )
        seed = {(1, "b1", "c"), (1, "b2", "c")}
        result = chase(flat_root, seed, sigma)
        assert satisfies_all(flat_root, result.instance, sigma)


class TestBudgetsAndStructure:
    def test_max_tuples_guard(self, flat_root):
        sigma = DependencySet.parse(flat_root, ["R(A) ->> R(B)"])
        seed = {(1, f"b{i}", f"c{i}") for i in range(10)}
        with pytest.raises(ReproError):
            chase(flat_root, seed, sigma, max_tuples=20)

    def test_result_type(self, flat_root, flat_sigma):
        result = chase(flat_root, set(), flat_sigma)
        assert isinstance(result, ChaseResult)
        assert result.instance == frozenset()
        assert result.rounds == 1

    def test_added_disjoint_from_input(self, flat_root, flat_sigma):
        seed = frozenset({(1, "b1", "c1"), (1, "b2", "c2")})
        result = chase(flat_root, seed, flat_sigma)
        assert not (result.added & seed)
        assert result.instance == seed | result.added


class TestChaseObservability:
    def test_chase_run_span(self, flat_root, flat_sigma):
        from repro.obs import InMemorySink, Observer, install

        sink = InMemorySink()
        with install(Observer([sink])):
            result = chase(flat_root, {(1, "b1", "c1"), (1, "b2", "c2")},
                           flat_sigma)
        [span] = sink.by_name("chase.run")
        assert span["attrs"] == {
            "tuples_in": 2, "sigma": 1, "fds": 0, "mvds": 1,
            "rounds": result.rounds, "added": 2, "tuples_out": 4,
        }

    def test_chase_metrics(self, flat_root, flat_sigma):
        from repro.obs import Observer, install

        with install(Observer()) as observer:
            chase(flat_root, {(1, "b1", "c1"), (1, "b2", "c2")}, flat_sigma)
            counters = observer.metrics.snapshot()["counters"]
        assert counters["chase.runs"] == 1
        assert counters["chase.exchange_tuples"] == 2

    def test_disabled_observer_chase_unchanged(self, flat_root, flat_sigma):
        result = chase(flat_root, {(1, "b1", "c1"), (1, "b2", "c2")},
                       flat_sigma)
        assert len(result.instance) == 4
