"""Unit tests for the generalised 4NF test."""

import pytest

from repro.attributes import parse_attribute as p, parse_subattribute
from repro.dependencies import DependencySet
from repro.normalization import FourNFViolation, is_in_4nf, violations


def s(text, root):
    return parse_subattribute(text, root)


class TestIsIn4NF:
    def test_empty_sigma_is_in_4nf(self):
        # Only trivial dependencies are implied.
        root = p("R(A, B)")
        assert is_in_4nf(DependencySet(root))

    def test_key_fd_keeps_4nf(self):
        root = p("R(A, B)")
        sigma = DependencySet.parse(root, ["R(A) -> R(A, B)"])
        assert is_in_4nf(sigma)

    def test_nonkey_fd_violates(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        assert not is_in_4nf(sigma)

    def test_nonkey_mvd_violates(self, pubcrawl_scenario):
        assert not is_in_4nf(pubcrawl_scenario.sigma())

    def test_binary_mvd_is_trivial_and_harmless(self):
        root = p("R(A, B)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])  # trivial: join = N
        assert is_in_4nf(sigma)

    def test_exhaustive_catches_implied_violations(self):
        # Σ states a dependency whose *consequence* (not the statement
        # itself) violates 4NF from a different left-hand side.
        root = p("R(A, B, C, D)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)", "R(A, C, D) -> R(A)"])
        assert not is_in_4nf(sigma, exhaustive=True)

    def test_stated_mode_versus_exhaustive_mode(self):
        # A schema whose stated deps look clean but an implied lhs is not:
        # R(A) ->> R(B) with key AB... stated check also sees it here, so
        # just assert the two modes agree on an easy case.
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A, B) -> R(C)"])
        assert is_in_4nf(sigma, exhaustive=False) == is_in_4nf(sigma, exhaustive=True)


class TestViolations:
    def test_violation_structure(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        found = violations(sigma)
        assert found
        violation = found[0]
        assert isinstance(violation, FourNFViolation)
        mvd = violation.as_mvd()
        assert not mvd.is_trivial(root)
        # The violating lhs must not be a superkey.
        from repro.normalization import is_superkey

        assert not is_superkey(sigma, violation.lhs)

    def test_stated_mode_records_source(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        found = violations(sigma, exhaustive=False)
        assert all(v.source is not None for v in found)

    def test_exhaustive_mode_has_no_source(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        found = violations(sigma, exhaustive=True)
        assert found
        assert all(v.source is None for v in found)

    def test_pubcrawl_violation_is_the_paper_mvd(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        sigma = pubcrawl_scenario.sigma()
        found = violations(sigma, exhaustive=False)
        lhss = {v.lhs for v in found}
        assert s("Pubcrawl(Person)", root) in lhss
