"""Unit tests for the lifted Bernstein synthesis."""

import pytest

from repro.attributes import is_subattribute, join_all, parse_attribute as p, parse_subattribute
from repro.core import implies
from repro.dependencies import DependencySet
from repro.normalization import is_superkey
from repro.normalization.synthesis import SynthesisResult, synthesize


def s(text, root):
    return parse_subattribute(text, root)


class TestClassicalCases:
    def test_textbook_example(self):
        root = p("R(A, B, C, D)")
        sigma = DependencySet.parse(
            root, ["R(A) -> R(B)", "R(B) -> R(A)", "R(A) -> R(C)"]
        )
        result = synthesize(sigma)
        components = set(result.components)
        # A ≡ B merge with C into one component; D needs the key component.
        assert s("R(A, B, C)", root) in components
        assert len(components) == 2
        assert is_superkey(sigma, result.key_component)

    def test_single_fd(self):
        root = p("R(A, B)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        result = synthesize(sigma)
        assert result.components == (root,)  # A->B: AB is already a key

    def test_no_fds_yields_key_only(self):
        root = p("R(A, B)")
        result = synthesize(DependencySet(root))
        assert result.components == (root,)
        assert result.key_component == root

    def test_subsumed_components_dropped(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(
            root, ["R(A) -> R(B)", "R(A, B) -> R(C)"]  # same closure group
        )
        result = synthesize(sigma)
        assert result.components == (root,)


class TestGuarantees:
    @pytest.mark.parametrize(
        "root_text,sigma_texts",
        [
            ("R(A, B, C, D)", ["R(A) -> R(B)", "R(C) -> R(D)"]),
            ("R(A, B, C)", ["R(A) -> R(B)", "R(B) -> R(C)"]),
            ("R(A, L[D(B, C)], E)", ["R(A) -> R(L[D(B, C)])", "R(E) -> R(A)"]),
            ("Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
             ["Pubcrawl(Person) -> Pubcrawl(Visit[λ])"]),
        ],
    )
    def test_dependency_preservation_and_coverage(self, root_text, sigma_texts):
        root = p(root_text)
        sigma = DependencySet.parse(root, sigma_texts)
        result = synthesize(sigma)
        # Every cover FD fits inside one component.
        for dependency in result.cover.fds():
            both = join_all(root, [dependency.lhs, dependency.rhs])
            assert any(
                is_subattribute(both, component)
                for component in result.components
            ), dependency.display(root)
        # The components jointly cover the root.
        assert join_all(root, result.components) == root
        # The key component is a superkey.
        assert is_superkey(sigma, result.key_component)
        # Components are pairwise incomparable.
        for first in result.components:
            for second in result.components:
                if first != second:
                    assert not is_subattribute(first, second)

    def test_lossless_on_witness_instances(self):
        from repro.attributes import BasisEncoding, join as attr_join
        from repro.values import generalised_join, project_instance
        from repro.witness import build_witness

        root = p("R(A, B, C, D)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)", "R(C) -> R(D)"])
        enc = BasisEncoding(root)
        witness = build_witness(sigma, s("R(A)", root), encoding=enc)
        result = synthesize(sigma, encoding=enc)

        components = list(result.components)
        # Join the key component last against the accumulated rest.
        components.sort(key=lambda c: c == result.key_component)
        current_attr = components[0]
        current = project_instance(root, current_attr, witness.instance)
        for component in components[1:]:
            projection = project_instance(root, component, witness.instance)
            current = generalised_join(
                root, current_attr, component, current, projection
            )
            current_attr = attr_join(root, current_attr, component)
        assert current_attr == root
        assert current == witness.instance

    def test_describe(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        result = synthesize(sigma)
        text = result.describe()
        assert "synthesized components:" in text
        assert "(key)" in text

    def test_mvds_inform_closures_but_do_not_split(self):
        # The MVD strengthens Person's closure (mixed meet) but only FDs
        # make components.
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        sigma = DependencySet.parse(
            root, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        result = synthesize(sigma)
        assert result.components == (root,)  # no FDs: key component only
