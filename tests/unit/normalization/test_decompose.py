"""Unit tests for the lossless 4NF-style decomposition."""

import random

import pytest

from repro.attributes import join_all, parse_attribute as p, parse_subattribute
from repro.dependencies import DependencySet
from repro.normalization import decompose_4nf
from repro.values import ValueGenerator, generalised_join, project_instance
from repro.witness import build_witness


def s(text, root):
    return parse_subattribute(text, root)


def join_back(root, components, instance):
    """Project onto every component and re-join pairwise."""
    projections = [
        (component, project_instance(root, component, instance))
        for component in components
    ]
    current_attr, current = projections[0]
    for component, projection in projections[1:]:
        current = generalised_join(root, current_attr, component, current, projection)
        from repro.attributes import join as attr_join

        current_attr = attr_join(root, current_attr, component)
    return current_attr, current


class TestPubcrawlDecomposition:
    def test_components_match_example_4_5(self, pubcrawl_scenario):
        decomposition = decompose_4nf(pubcrawl_scenario.sigma())
        expected = {
            s(text, pubcrawl_scenario.root)
            for text in pubcrawl_scenario.decomposition_texts
        }
        assert set(decomposition.components) == expected

    def test_split_history_recorded(self, pubcrawl_scenario):
        decomposition = decompose_4nf(pubcrawl_scenario.sigma())
        assert len(decomposition.steps) == 1
        step = decomposition.steps[0]
        assert step.component == pubcrawl_scenario.root

    def test_lossless_on_paper_instance(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        decomposition = decompose_4nf(pubcrawl_scenario.sigma())
        joined_attr, joined = join_back(
            root, list(decomposition.components), pubcrawl_scenario.instance
        )
        assert joined_attr == root
        assert joined == pubcrawl_scenario.instance

    def test_describe(self, pubcrawl_scenario):
        decomposition = decompose_4nf(pubcrawl_scenario.sigma())
        text = decomposition.describe()
        assert "components:" in text and "splits:" in text


class TestGeneralBehaviour:
    def test_clean_schema_stays_whole(self):
        root = p("R(A, B)")
        decomposition = decompose_4nf(DependencySet(root))
        assert decomposition.components == (root,)
        assert decomposition.steps == ()

    def test_relational_mvd_decomposition(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        decomposition = decompose_4nf(sigma)
        assert set(decomposition.components) == {
            s("R(A, B)", root),
            s("R(A, C)", root),
        }

    def test_fd_chain_decomposition_components_cover_root(self):
        root = p("R(A, B, C, D)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)", "R(B) -> R(C)"])
        decomposition = decompose_4nf(sigma)
        assert join_all(root, decomposition.components) == root
        assert len(decomposition.components) >= 2

    def test_exhaustive_mode_on_small_schema(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        exhaustive = decompose_4nf(sigma, exhaustive=True)
        assert set(exhaustive.components) == {
            s("R(A, B)", root),
            s("R(A, C)", root),
        }

    def test_lossless_on_sigma_satisfying_instances(self):
        # Witness instances satisfy Σ by construction; the decomposition
        # must re-join them losslessly.
        cases = [
            ("R(A, B, C)", ["R(A) ->> R(B)"], "R(A)"),
            ("R(A, L[D(B, C)])", ["R(A) ->> R(L[D(B)])"], "R(A)"),
            ("R(A, B, C, D)", ["R(A) -> R(B)", "R(B) ->> R(C)"], "R(A)"),
        ]
        for root_text, sigma_texts, x_text in cases:
            root = p(root_text)
            sigma = DependencySet.parse(root, sigma_texts)
            witness = build_witness(sigma, s(x_text, root))
            decomposition = decompose_4nf(sigma)
            joined_attr, joined = join_back(
                root, list(decomposition.components), witness.instance
            )
            assert joined_attr == root
            assert joined == witness.instance, root_text

    def test_component_budget(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        with pytest.raises(RuntimeError):
            decompose_4nf(sigma, max_components=1)
