"""Unit tests for superkeys and candidate keys."""

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute
from repro.dependencies import DependencySet
from repro.normalization import candidate_keys, is_superkey


def s(text, root):
    return parse_subattribute(text, root)


class TestIsSuperkey:
    def test_root_always_superkey(self):
        root = p("R(A, B)")
        assert is_superkey(DependencySet(root), root)

    def test_fd_makes_superkey(self):
        root = p("R(A, B)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        assert is_superkey(sigma, s("R(A)", root))
        assert not is_superkey(sigma, s("R(B)", root))

    def test_mvd_alone_not_superkey(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        assert not is_superkey(sigma, s("R(A)", root))

    def test_mixed_meet_contributes_to_keys(self):
        # Person ->> pubs makes Person determine the visit length, but the
        # beers/pubs content is still free: not a superkey.
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        sigma = DependencySet.parse(
            root, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        assert not is_superkey(sigma, s("Pubcrawl(Person)", root))


class TestCandidateKeys:
    def test_no_dependencies_key_is_root(self):
        root = p("R(A, B)")
        keys = candidate_keys(DependencySet(root))
        assert keys == (root,)

    def test_single_fd(self):
        root = p("R(A, B)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        keys = candidate_keys(sigma)
        assert keys == (s("R(A)", root),)

    def test_two_alternative_keys(self):
        root = p("R(A, B)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B)", "R(B) -> R(A)"])
        keys = set(candidate_keys(sigma))
        assert keys == {s("R(A)", root), s("R(B)", root)}

    def test_composite_key(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A, B) -> R(C)"])
        keys = candidate_keys(sigma)
        assert keys == (s("R(A, B)", root),)

    def test_keys_are_minimal(self):
        root = p("R(A, B, C)")
        sigma = DependencySet.parse(root, ["R(A) -> R(B, C)"])
        keys = candidate_keys(sigma)
        # R(A) is a key; R(A, B) must not be reported.
        assert keys == (s("R(A)", root),)

    def test_list_length_participates_in_keys(self):
        # The visit content (given the person) needs the beer list itself;
        # the key search must dig into list components.
        root = p("R(A, L[B])")
        sigma = DependencySet.parse(root, ["R(L[B]) -> R(A)"])
        keys = candidate_keys(sigma)
        assert keys == (s("R(L[B])", root),)

    def test_generator_budget_respected(self):
        root = p("R(A, B, C, D, E)")
        sigma = DependencySet(root)  # only the root itself is a key
        keys = candidate_keys(sigma, max_generators=2)
        assert keys == ()  # needs 5 generators, beyond the budget

    def test_encoding_reuse(self):
        root = p("R(A, B)")
        enc = BasisEncoding(root)
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        assert candidate_keys(sigma, encoding=enc) == (s("R(A)", root),)
