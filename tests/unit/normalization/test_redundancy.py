"""Unit tests for value-level redundancy detection (§7 motivation)."""

import pytest

from repro import Schema
from repro.attributes import parse_attribute as p, parse_subattribute
from repro.dependencies import DependencySet
from repro.normalization import (
    RedundantOccurrence,
    redundancy_report,
    redundant_occurrences,
)


class TestRelationalRedundancy:
    @pytest.fixture()
    def schema(self):
        return Schema("R(A, B, C)")

    def test_fd_forces_repeated_values(self, schema):
        sigma = schema.dependencies("R(A) -> R(B)")
        instance = schema.instance([(1, "b", "x"), (1, "b", "y")])
        occurrences = redundant_occurrences(sigma, instance,
                                            encoding=schema.encoding)
        # Both B-occurrences are forced (each by the other tuple).
        assert len(occurrences) == 2
        assert all(
            occurrence.basis == parse_subattribute("R(B)", schema.root).components[1]
            or schema.show(occurrence.basis) == "R(B)"
            for occurrence in occurrences
        )

    def test_no_sigma_no_redundancy(self, schema):
        sigma = DependencySet(schema.root)
        instance = schema.instance([(1, "b", "x"), (1, "b", "y")])
        assert redundant_occurrences(sigma, instance,
                                     encoding=schema.encoding) == ()

    def test_key_fd_produces_no_redundancy(self, schema):
        # With A as a key there are no two distinct tuples sharing A.
        sigma = schema.dependencies("R(A) -> R(A, B, C)")
        instance = schema.instance([(1, "b", "x"), (2, "b", "y")])
        assert redundant_occurrences(sigma, instance,
                                     encoding=schema.encoding) == ()

    def test_agreement_alone_is_not_redundancy(self, schema):
        # Tuples agreeing by coincidence (no FD) are not redundant.
        sigma = schema.dependencies("R(C) -> R(B)")
        instance = schema.instance([(1, "b", "x"), (2, "b", "y")])
        assert redundant_occurrences(sigma, instance,
                                     encoding=schema.encoding) == ()

    def test_transitive_force(self, schema):
        # A -> B and B -> C: the C-occurrences are forced through B.
        sigma = schema.dependencies("R(A) -> R(B)", "R(B) -> R(C)")
        instance = schema.instance([(1, "b", "c"), (1, "b", "c")])
        # identical tuples collapse; use distinct-on-nothing-relevant data
        instance = schema.instance([(1, "b", "c"), (2, "b", "c"), (1, "b", "c")])
        report = redundancy_report(sigma, instance, encoding=schema.encoding)
        shown = {schema.show(basis): count for basis, count in report.items()}
        assert "R(C)" in shown  # forced via B -> C between the two b-sharers


class TestListRedundancy:
    def test_pubcrawl_visit_count_is_the_hot_spot(self, pubcrawl_scenario):
        schema = Schema(pubcrawl_scenario.root)
        sigma = schema.dependencies(pubcrawl_scenario.holding_mvd_text)
        report = redundancy_report(
            sigma, pubcrawl_scenario.instance, encoding=schema.encoding
        )
        shown = {schema.show(basis): count for basis, count in report.items()}
        # The ONLY redundancy is the list length forced by the mixed-meet
        # FD Person -> Visit[λ]: Sven's pair + Klaus-Dieter's quadruple.
        assert shown == {"Pubcrawl(Visit[λ])": 6}

    def test_occurrence_structure(self, pubcrawl_scenario):
        schema = Schema(pubcrawl_scenario.root)
        sigma = schema.dependencies(pubcrawl_scenario.holding_mvd_text)
        occurrences = redundant_occurrences(
            sigma, pubcrawl_scenario.instance, encoding=schema.encoding
        )
        for occurrence in occurrences:
            assert isinstance(occurrence, RedundantOccurrence)
            assert occurrence.tuple != occurrence.witness
            assert "forced" in occurrence.describe(schema.root)

    def test_decomposed_components_remove_content_redundancy(self):
        # A classical MVD-induced duplication disappears after splitting.
        schema = Schema("R(A, B, C)")
        sigma = schema.dependencies("R(A) -> R(B)")
        instance = schema.instance([(1, "b", "x"), (1, "b", "y")])
        assert redundant_occurrences(sigma, instance, encoding=schema.encoding)

        from repro.values import project_instance

        b_side = parse_subattribute("R(A, B)", schema.root)
        projected = project_instance(schema.root, b_side, instance)
        # One tuple per (A, B): nothing left to force.
        assert len(projected) == 1
