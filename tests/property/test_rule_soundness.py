"""Property tests: semantic soundness of every Theorem 4.6 rule (E14).

For random roots, instances and premise dependencies: whenever all
premises of a rule are satisfied by an instance, every conclusion the
rule produces must be satisfied too.  Each rule is exercised in
isolation, so an unsound generalisation of a relational rule would be
pinpointed directly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies import satisfies
from repro.inference import ALL_RULES
from repro.values import ValueGenerator
from tests.strategies import roots_with_sigma

SETTINGS = settings(max_examples=150, deadline=None)


@st.composite
def rule_scenarios(draw):
    root, enc, sigma = draw(roots_with_sigma(max_dependencies=2, max_basis=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    size = draw(st.integers(min_value=0, max_value=8))
    instance = ValueGenerator(random.Random(seed), max_list_length=2).instance(
        root, size
    )
    # Element pool for quantified schemata: sides of Σ plus a random one.
    pool = {root}
    for dependency in sigma:
        pool.add(dependency.lhs)
        pool.add(dependency.rhs)
    extra = enc.down_close(draw(st.integers(min_value=0, max_value=enc.full)))
    pool.add(enc.decode(extra))
    return root, sigma, instance, sorted(pool, key=str)


@SETTINGS
@given(rule_scenarios())
def test_axiom_rules_only_produce_satisfied_dependencies(case):
    root, sigma, instance, pool = case
    for rule in ALL_RULES:
        if rule.arity != 0:
            continue
        for conclusion in rule.conclusions(root, (), pool):
            assert satisfies(root, instance, conclusion), (
                rule.name,
                conclusion.display(root),
            )


@SETTINGS
@given(rule_scenarios())
def test_unary_rules_sound(case):
    root, sigma, instance, pool = case
    satisfied = [d for d in sigma if satisfies(root, instance, d)]
    for rule in ALL_RULES:
        if rule.arity != 1:
            continue
        for premise in satisfied:
            for conclusion in rule.conclusions(root, (premise,), pool):
                assert satisfies(root, instance, conclusion), (
                    rule.name,
                    premise.display(root),
                    conclusion.display(root),
                )


@SETTINGS
@given(rule_scenarios())
def test_binary_rules_sound(case):
    root, sigma, instance, pool = case
    satisfied = [d for d in sigma if satisfies(root, instance, d)]
    for rule in ALL_RULES:
        if rule.arity != 2:
            continue
        for first in satisfied:
            for second in satisfied:
                for conclusion in rule.conclusions(root, (first, second), pool):
                    assert satisfies(root, instance, conclusion), (
                        rule.name,
                        first.display(root),
                        second.display(root),
                        conclusion.display(root),
                    )
