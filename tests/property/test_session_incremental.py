"""Property test: incremental Σ editing is indistinguishable from fresh.

A Session that lived through an arbitrary interleaving of ``add`` /
``retract`` / query operations must answer exactly like a Session built
directly from the final Σ — warm starts and provenance-exact retraction
are pure cache maintenance, never semantics.  Checked per-operation for
the worklist engine and, at the final state, across all three engines.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import BasisEncoding, parse_attribute
from repro.core import Session
from repro.dependencies import FunctionalDependency, MultivaluedDependency

# A small root with a list component: the mixed meet rule (the paper's
# genuinely novel interaction) is reachable at this size.
ROOT = parse_attribute("R(A, L[M(B, C)])")
ENCODING = BasisEncoding(ROOT)


@st.composite
def dependencies(draw):
    lhs = ENCODING.decode(
        ENCODING.down_close(draw(st.integers(min_value=0,
                                             max_value=ENCODING.full)))
    )
    rhs = ENCODING.decode(
        ENCODING.down_close(draw(st.integers(min_value=0,
                                             max_value=ENCODING.full)))
    )
    cls = MultivaluedDependency if draw(st.booleans()) else FunctionalDependency
    return cls(lhs, rhs)


@st.composite
def edit_scripts(draw):
    """A sequence of ('add', dep) / ('retract', index) / ('query', mask)."""
    pool = draw(st.lists(dependencies(), min_size=1, max_size=6))
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        kind = draw(st.sampled_from(["add", "retract", "query", "query"]))
        if kind == "add":
            steps.append(("add", draw(st.sampled_from(pool))))
        elif kind == "retract":
            steps.append(("retract", draw(st.integers(min_value=0,
                                                      max_value=7))))
        else:
            generators = draw(st.integers(min_value=0,
                                          max_value=ENCODING.full))
            steps.append(("query", ENCODING.down_close(generators)))
    return steps


def _state(session: Session, mask: int) -> tuple[int, frozenset]:
    result = session.result_for_mask(mask)
    return result.closure_mask, result.blocks


@settings(max_examples=50, deadline=None)
@given(edit_scripts())
def test_incremental_session_matches_fresh_at_every_step(steps):
    session = Session(ROOT, encoding=ENCODING)
    for kind, payload in steps:
        if kind == "add":
            session.add(payload)
        elif kind == "retract":
            members = session.dependencies
            if not members:
                continue
            session.retract(members[payload % len(members)])
        else:
            fresh = Session(ROOT, session.dependencies, encoding=ENCODING)
            assert _state(session, payload) == _state(fresh, payload)

    # Final state, all engines: the lived-in cache agrees with cold
    # recomputes on every lhs it ever cached.
    final = session.dependencies
    for mask in session.cached_masks():
        expected = _state(session, mask)
        for engine in ("worklist", "naive", "reference"):
            fresh = Session(ROOT, final, encoding=ENCODING, engine=engine)
            assert _state(fresh, mask) == expected, engine


@settings(max_examples=50, deadline=None)
@given(edit_scripts())
def test_retraction_counters_are_exact(steps):
    """invalidations + retained always equals the pre-retract entry count."""
    session = Session(ROOT, encoding=ENCODING)
    before = session.cache_info()
    for kind, payload in steps:
        if kind == "add":
            session.add(payload)
        elif kind == "retract":
            members = session.dependencies
            if not members:
                continue
            entries = len(session.cached_masks())
            session.retract(members[payload % len(members)])
            after = session.cache_info()
            delta = ((after.invalidations - before.invalidations)
                     + (after.retained - before.retained))
            assert delta == entries
            before = after
        else:
            session.result_for_mask(payload)
