"""Property tests: differential checks on shared-subterm schemas.

Hash-equal subtrees occurring under several parents (e.g.
``R(L[A], L[A])``) exercise code paths that unique-name generation never
reaches — one such path held a real traversal bug caught by hypothesis.
This module keeps a dedicated differential battery on exactly that
shape of input.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import BasisEncoding, basis, is_subattribute
from repro.attributes.basis import basis_poset
from repro.core import compute_closure, reference_closure
from repro.workloads import random_attribute, random_element_mask, random_sigma

SETTINGS = settings(max_examples=80, deadline=None)


@st.composite
def shared_name_problems(draw):
    seed = draw(st.integers(min_value=0, max_value=2**24))
    rng = random.Random(seed)
    for _ in range(50):
        root = random_attribute(rng, max_depth=3, shared_names=True)
        encoding = BasisEncoding(root)
        if 0 < encoding.size <= 8:
            break
    else:  # pragma: no cover - the loop above virtually always succeeds
        root = random_attribute(rng, max_depth=2, shared_names=True)
        encoding = BasisEncoding(root)
    sigma = random_sigma(rng, encoding, rng.randint(0, 3))
    x_mask = random_element_mask(rng, encoding)
    return root, encoding, sigma, x_mask


@SETTINGS
@given(shared_name_problems())
def test_poset_matches_pairwise_order(case):
    root, encoding, _, _ = case
    elements, below = basis_poset(root)
    assert elements == basis(root)
    for i, mask in enumerate(below):
        expected = 0
        for j, other in enumerate(elements):
            if is_subattribute(other, elements[i]):
                expected |= 1 << j
        assert mask == expected


@SETTINGS
@given(shared_name_problems())
def test_fast_and_reference_agree(case):
    root, encoding, sigma, x_mask = case
    fast = compute_closure(encoding, x_mask, sigma)
    ref_closure, ref_db = reference_closure(root, encoding.decode(x_mask), sigma)
    assert ref_closure == fast.closure
    assert ref_db == frozenset(encoding.decode(mask) for mask in fast.blocks)
