"""Property tests: bitmask encoding ⇔ structural Definition 3.8 operations.

Two independent implementations of the same algebra — the Birkhoff
bitmask encoding and the structural recursion — must agree everywhere.
"""

from hypothesis import given, settings

from repro.attributes import (
    complement,
    double_complement,
    is_subattribute,
    join,
    meet,
    pseudo_difference,
)
from repro.attributes.basis import is_possessed_by
from tests.strategies import roots_with_element_pairs, roots_with_elements

SETTINGS = settings(max_examples=120, deadline=None)


@SETTINGS
@given(roots_with_element_pairs())
def test_le_agrees(case):
    root, enc, (x, y) = case
    assert enc.le(x, y) == is_subattribute(enc.decode(x), enc.decode(y))


@SETTINGS
@given(roots_with_element_pairs())
def test_join_agrees(case):
    root, enc, (x, y) = case
    structural = join(root, enc.decode(x), enc.decode(y))
    assert enc.decode(enc.join(x, y)) == structural


@SETTINGS
@given(roots_with_element_pairs())
def test_meet_agrees(case):
    root, enc, (x, y) = case
    structural = meet(root, enc.decode(x), enc.decode(y))
    assert enc.decode(enc.meet(x, y)) == structural


@SETTINGS
@given(roots_with_element_pairs())
def test_pseudo_difference_agrees(case):
    root, enc, (x, y) = case
    structural = pseudo_difference(root, enc.decode(x), enc.decode(y))
    assert enc.decode(enc.pseudo_difference(x, y)) == structural


@SETTINGS
@given(roots_with_elements())
def test_complement_agrees(case):
    root, enc, (x,) = case
    assert enc.decode(enc.complement(x)) == complement(root, enc.decode(x))


@SETTINGS
@given(roots_with_elements())
def test_double_complement_agrees(case):
    root, enc, (x,) = case
    assert enc.decode(enc.double_complement(x)) == double_complement(
        root, enc.decode(x)
    )


@SETTINGS
@given(roots_with_elements())
def test_possessed_agrees(case):
    root, enc, (x,) = case
    element = enc.decode(x)
    for i, b in enumerate(enc.basis):
        assert bool(enc.possessed(x) >> i & 1) == is_possessed_by(root, b, element)


@SETTINGS
@given(roots_with_elements())
def test_encode_decode_roundtrip(case):
    root, enc, (x,) = case
    assert enc.encode(enc.decode(x)) == x
