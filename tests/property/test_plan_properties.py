"""Property tests for the compiled plan and the closure-interval cache.

Three families of laws back the plan subsystem:

* the **closure operator laws** (extensive, monotone, idempotent) — the
  exact algebraic facts the interval rule ``X' ≤ X ≤ X'⁺ ⇒ X⁺ = X'⁺``
  is derived from, so they are pinned here on random ``(root, Σ)``;
* **plan transparency** — the kernel with a compiled plan is
  bit-identical to the plan-less kernel on ``(X⁺, DB, passes)`` *and*
  provenance, for arbitrary Σ including exact duplicates;
* **interval answers are real answers** — every ``closure_mask_for``
  from a lived-in session equals a cold plan-less kernel run.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Session
from repro.core.closure import _as_mask_sigma
from repro.core.engine import closure_of_masks_fast
from repro.core.plan import compile_plan

from tests.strategies import roots_with_sigma


def _sigma_masks(encoding, sigma):
    return _as_mask_sigma(encoding, sigma)


@settings(max_examples=60, deadline=None)
@given(roots_with_sigma(), st.data())
def test_closure_operator_laws(root_encoding_sigma, data):
    root, encoding, sigma = root_encoding_sigma
    fd_masks, mvd_masks = _sigma_masks(encoding, sigma)

    x = encoding.down_close(
        data.draw(st.integers(min_value=0, max_value=encoding.full))
    )
    y = encoding.down_close(
        data.draw(st.integers(min_value=0, max_value=encoding.full))
    )

    def plus(mask):
        return closure_of_masks_fast(encoding, mask, fd_masks, mvd_masks)[0]

    x_plus = plus(x)
    assert x & ~x_plus == 0                     # extensive: X ≤ X⁺
    if y & ~x == 0:                             # monotone: Y ≤ X ⇒ Y⁺ ≤ X⁺
        assert plus(y) & ~x_plus == 0
    assert plus(x_plus) == x_plus               # idempotent: X⁺⁺ = X⁺


@settings(max_examples=60, deadline=None)
@given(roots_with_sigma(), st.data())
def test_plan_is_transparent_to_the_kernel(root_encoding_sigma, data):
    root, encoding, sigma = root_encoding_sigma
    fd_masks, mvd_masks = _sigma_masks(encoding, sigma)
    # Inject exact duplicates: folding must not change any output.
    if fd_masks and data.draw(st.booleans()):
        fd_masks = fd_masks + [fd_masks[0]]
    if mvd_masks and data.draw(st.booleans()):
        mvd_masks = mvd_masks + [mvd_masks[-1]]
    plan = compile_plan(encoding, fd_masks, mvd_masks)

    x = encoding.down_close(
        data.draw(st.integers(min_value=0, max_value=encoding.full))
    )
    fired_off: set[int] = set()
    fired_on: set[int] = set()
    off = closure_of_masks_fast(encoding, x, fd_masks, mvd_masks,
                                fired=fired_off)
    on = closure_of_masks_fast(encoding, x, fd_masks, mvd_masks,
                               fired=fired_on, plan=plan)
    assert on == off                            # (X⁺, DB, passes)
    # Plan provenance folds duplicates to their first original index;
    # modulo that remap the fired sets must agree.
    folded = plan.folded_of
    assert ({folded[i] for i in fired_on}
            == {folded[i] for i in fired_off})


@settings(max_examples=40, deadline=None)
@given(roots_with_sigma(), st.data())
def test_session_interval_answers_equal_cold_runs(root_encoding_sigma, data):
    root, encoding, sigma = root_encoding_sigma
    fd_masks, mvd_masks = _sigma_masks(encoding, sigma)
    session = Session(root, sigma, encoding=encoding)

    masks = [
        encoding.down_close(
            data.draw(st.integers(min_value=0, max_value=encoding.full))
        )
        for _ in range(data.draw(st.integers(min_value=1, max_value=8)))
    ]
    # Supersets of earlier queries make interval hits likely; every
    # answer — exact, interval or computed — must equal a cold run.
    for index, mask in enumerate(masks):
        if index and data.draw(st.booleans()):
            mask |= masks[data.draw(st.integers(min_value=0,
                                                max_value=index - 1))]
        cold = closure_of_masks_fast(encoding, mask, fd_masks, mvd_masks)[0]
        assert session.closure_mask_for(mask) == cold, format(mask, "#x")
    info = session.cache_info()
    answered = (info.hits + info.plan.exact_hits + info.plan.interval_hits
                + info.plan.misses)
    assert answered >= len(masks)   # full-cache hits count too
