"""Property tests: Proposition 4.10 and the structure of ``Dep(X)``.

The remark before Definition 4.9: the set
``Dep(X) = {Y | X ↠ Y ∈ Σ⁺}``, ordered by ``≤``, forms a Brouwerian
algebra (it is closed under the multi-valued join, meet and
pseudo-difference rules, and under complementation).  Combined with
Proposition 4.10 this gives strong structural laws the algorithm's
output must satisfy — checked here on random inputs through the
membership predicates themselves.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_closure
from tests.strategies import roots_with_sigma

SETTINGS = settings(max_examples=80, deadline=None)


@st.composite
def analysed_problems(draw, max_basis=6):
    root, enc, sigma = draw(roots_with_sigma(max_dependencies=3, max_basis=max_basis))
    x_mask = enc.down_close(draw(st.integers(min_value=0, max_value=enc.full)))
    result = compute_closure(enc, x_mask, sigma)
    y_mask = enc.down_close(draw(st.integers(min_value=0, max_value=enc.full)))
    z_mask = enc.down_close(draw(st.integers(min_value=0, max_value=enc.full)))
    return enc, result, y_mask, z_mask


@SETTINGS
@given(analysed_problems())
def test_dep_x_closed_under_join(case):
    enc, result, y, z = case
    if result.implies_mvd_rhs(y) and result.implies_mvd_rhs(z):
        assert result.implies_mvd_rhs(enc.join(y, z))


@SETTINGS
@given(analysed_problems())
def test_dep_x_closed_under_meet(case):
    enc, result, y, z = case
    if result.implies_mvd_rhs(y) and result.implies_mvd_rhs(z):
        assert result.implies_mvd_rhs(enc.meet(y, z))


@SETTINGS
@given(analysed_problems())
def test_dep_x_closed_under_pseudo_difference(case):
    enc, result, y, z = case
    if result.implies_mvd_rhs(y) and result.implies_mvd_rhs(z):
        assert result.implies_mvd_rhs(enc.pseudo_difference(y, z))


@SETTINGS
@given(analysed_problems())
def test_dep_x_closed_under_complementation(case):
    enc, result, y, _ = case
    if result.implies_mvd_rhs(y):
        assert result.implies_mvd_rhs(enc.complement(y))


@SETTINGS
@given(analysed_problems())
def test_fd_implication_embeds_into_mvds(case):
    # X → Y ∈ Σ⁺  ⇒  X ↠ Y ∈ Σ⁺  (the implication rule, via Prop. 4.10).
    enc, result, y, _ = case
    if result.implies_fd_rhs(y):
        assert result.implies_mvd_rhs(y)


@SETTINGS
@given(analysed_problems())
def test_closure_itself_is_an_implied_fd_and_mvd(case):
    enc, result, _, _ = case
    assert result.implies_fd_rhs(result.closure_mask)
    assert result.implies_mvd_rhs(result.closure_mask)


@SETTINGS
@given(analysed_problems())
def test_x_and_its_subattributes_always_implied(case):
    # Reflexivity through the algorithm's lens: Y ≤ X ⇒ both implied.
    enc, result, y, _ = case
    below_x = enc.meet(y, result.x_mask)
    assert result.implies_fd_rhs(below_x)
    assert result.implies_mvd_rhs(below_x)


@SETTINGS
@given(analysed_problems())
def test_dep_basis_members_have_cc_as_joins_of_blocks(case):
    # Definition 4.9 (iii): for every implied MVD rhs Y, the maximal part
    # Y^CC is a join of X^M blocks (or of closure-internal members).
    enc, result, y, _ = case
    if result.implies_mvd_rhs(y):
        y_cc = enc.double_complement(y)
        union = 0
        for member in result.dependency_basis_masks():
            if enc.le(member, y_cc):
                union |= member
        assert union == y_cc
