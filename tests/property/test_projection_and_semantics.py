"""Property tests: projections, agreement sets, Theorem 4.4, Lemma 4.3.

E11 (MVD ⇔ lossless join) and E13 (triviality characterisation) live
here, together with the structural facts the witness construction relies
on: projection composition, and agreement sets being join-closed ideals.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies import (
    FunctionalDependency,
    MultivaluedDependency,
    satisfies,
    satisfies_mvd,
    satisfies_mvd_via_join,
)
from repro.values import ValueGenerator, project
from tests.strategies import (
    nested_attributes,
    roots_with_element_pairs,
    roots_with_elements,
    roots_with_sigma_and_instance,
)

SETTINGS = settings(max_examples=100, deadline=None)


@st.composite
def roots_with_values(draw, count=2):
    root = draw(nested_attributes(max_basis=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    generator = ValueGenerator(random.Random(seed), max_list_length=2)
    return root, [generator.value(root) for _ in range(count)]


@SETTINGS
@given(roots_with_elements(element_count=2, max_basis=6),
       st.integers(min_value=0, max_value=2**16))
def test_projection_composes(case, seed):
    # π^M_K ∘ π^N_M = π^N_K whenever K ≤ M.
    root, enc, (m_mask, k_mask) = case
    k_mask = enc.meet(m_mask, k_mask)  # force K ≤ M
    middle, target = enc.decode(m_mask), enc.decode(k_mask)
    value = ValueGenerator(random.Random(seed), max_list_length=2).value(root)
    assert project(middle, target, project(root, middle, value)) == project(
        root, target, value
    )


@SETTINGS
@given(roots_with_values())
def test_agreement_sets_are_join_closed_ideals(case):
    root, (first, second) = case
    from repro.attributes import BasisEncoding

    enc = BasisEncoding(root)
    agreeing = [
        mask
        for mask in enc.all_elements()
        if project(root, enc.decode(mask), first)
        == project(root, enc.decode(mask), second)
    ]
    agreement = set(agreeing)
    for x in agreeing:
        for y in agreeing:
            assert enc.join(x, y) in agreement
        # down-closure
        for mask in enc.all_elements():
            if enc.le(mask, x):
                assert mask in agreement


@SETTINGS
@given(roots_with_sigma_and_instance())
def test_corrected_theorem_4_4_equivalence(case):
    # r ⊨ X ↠ Y  ⟺  lossless binary join  ∧  r ⊨ X → Y⊓Y^C
    # (the corrected form of Theorem 4.4; see the erratum note in
    # repro.dependencies.satisfaction).
    root, enc, sigma, instance = case
    for dependency in sigma.mvds():
        assert satisfies_mvd(root, instance, dependency) == (
            satisfies_mvd_via_join(root, instance, dependency)
        )


@SETTINGS
@given(roots_with_sigma_and_instance())
def test_raw_theorem_4_4_direction_mvd_implies_lossless(case):
    # The "only if" direction of Theorem 4.4 as printed does hold:
    # a satisfied MVD always yields a lossless binary decomposition.
    from repro.dependencies import lossless_binary_decomposition

    root, enc, sigma, instance = case
    for dependency in sigma.mvds():
        if satisfies_mvd(root, instance, dependency):
            assert lossless_binary_decomposition(root, instance, dependency)


@SETTINGS
@given(roots_with_element_pairs(max_basis=6),
       st.integers(min_value=0, max_value=2**16),
       st.integers(min_value=0, max_value=6))
def test_lemma_4_3_triviality(case, seed, size):
    # A dependency syntactically trivial per Lemma 4.3 holds in every
    # instance; and a dependency that held in ALL sampled instances of a
    # *spread* of random instances is likely trivial — we only assert the
    # sound direction plus the exact syntactic characterisation.
    root, enc, (lhs_mask, rhs_mask) = case
    lhs, rhs = enc.decode(lhs_mask), enc.decode(rhs_mask)
    fd = FunctionalDependency(lhs, rhs)
    mvd = MultivaluedDependency(lhs, rhs)
    assert fd.is_trivial(root) == enc.le(rhs_mask, lhs_mask)
    assert mvd.is_trivial(root) == (
        enc.le(rhs_mask, lhs_mask) or enc.join(lhs_mask, rhs_mask) == enc.full
    )
    instance = ValueGenerator(random.Random(seed), max_list_length=2).instance(
        root, size
    )
    if fd.is_trivial(root):
        assert satisfies(root, instance, fd)
    if mvd.is_trivial(root):
        assert satisfies(root, instance, mvd)


@SETTINGS
@given(roots_with_sigma_and_instance(max_dependencies=2))
def test_fd_satisfaction_implies_mvd_satisfaction(case):
    # Definition 4.1: r ⊨ X → Y entails r ⊨ X ↠ Y.
    root, enc, sigma, instance = case
    for dependency in sigma.fds():
        if satisfies(root, instance, dependency):
            assert satisfies(
                root,
                instance,
                MultivaluedDependency(dependency.lhs, dependency.rhs),
            )


@SETTINGS
@given(roots_with_sigma_and_instance(max_dependencies=2))
def test_mvd_satisfaction_closed_under_complement(case):
    # Semantic soundness of complementation, instance-level.
    root, enc, sigma, instance = case
    for dependency in sigma.mvds():
        if satisfies(root, instance, dependency):
            assert satisfies(root, instance, dependency.complemented(root))
