"""Property: persistence is invisible to semantics.

Any interleaving of ``add`` / ``retract`` (run through the command
registry exactly as the server does, persisted only when the outcome
actually mutated Σ) with arbitrarily placed snapshots and compactions,
followed by a crash-free recovery into a fresh
:class:`~repro.serve.server.SessionManager`, must reproduce the live
session bit-for-bit: the same schema/Σ/engine state, the same
generation, and the same closure answers as a Session built directly
from the final Σ — for all three engines.
"""

from __future__ import annotations

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import BasisEncoding, parse_attribute
from repro.core import Session, commands
from repro.dependencies import FunctionalDependency, MultivaluedDependency
from repro.serve.server import SessionManager
from repro.store import SessionStore

SCHEMA = "R(A, L[M(B, C)])"
ROOT = parse_attribute(SCHEMA)
ENCODING = BasisEncoding(ROOT)


@st.composite
def dependency_texts(draw):
    lhs = ENCODING.decode(ENCODING.down_close(
        draw(st.integers(min_value=0, max_value=ENCODING.full))))
    rhs = ENCODING.decode(ENCODING.down_close(
        draw(st.integers(min_value=0, max_value=ENCODING.full))))
    cls = (MultivaluedDependency if draw(st.booleans())
           else FunctionalDependency)
    return cls(lhs, rhs).display(ROOT)


@st.composite
def scripts(draw):
    """(steps, query masks): edits interleaved with durability ops."""
    pool = draw(st.lists(dependency_texts(), min_size=1, max_size=5))
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(
            ["add", "add", "retract", "snapshot", "compact"]))
        if kind in ("add", "retract"):
            steps.append((kind, draw(st.sampled_from(pool))))
        else:
            steps.append((kind, None))
    masks = [ENCODING.down_close(draw(st.integers(min_value=0,
                                                  max_value=ENCODING.full)))
             for _ in range(draw(st.integers(min_value=1, max_value=3)))]
    return steps, masks


def server_path(manager, store, op, params):
    """One mutation exactly as ``ReasoningServer._execute`` runs it:
    execute through the registry, bump + persist only on mutation."""
    command = commands.from_wire(op, params)
    managed = manager.peek(params["session"])
    try:
        outcome = commands.execute(command, managed.session)
    except ValueError:
        return  # the server answers with a typed error; nothing persisted
    if outcome.mutated:
        managed.generation += 1
        store.append(op, params)


@pytest.mark.parametrize("engine", ["worklist", "naive", "reference"])
@settings(max_examples=20, deadline=None)
@given(scripts())
def test_recovery_equals_fresh_in_memory_session(engine, script):
    steps, masks = script
    data_dir = tempfile.mkdtemp(prefix="repro-store-prop-")
    try:
        manager = SessionManager()
        store = SessionStore(data_dir, fsync="off")
        store.start(manager)
        manager.open("s", SCHEMA, engine=engine)
        store.append("open", {"name": "s", "schema": SCHEMA,
                              "engine": engine})
        live = manager.peek("s")
        for kind, payload in steps:
            if kind in ("add", "retract"):
                server_path(manager, store, kind,
                            {"session": "s", "dependency": payload})
            elif kind == "snapshot":
                store.snapshot(manager.snapshot_state())
            else:
                store.compact(manager.snapshot_state())
        live_state = live.session.snapshot_state()
        live_generation = live.generation
        final = list(live.session.dependencies)
        store.close()

        recovered_manager = SessionManager()
        recovery = SessionStore(data_dir, fsync="off")
        report = recovery.start(recovered_manager)
        recovery.close()
        assert report.torn == 0
        recovered = recovered_manager.peek("s")
        assert recovered.generation == live_generation
        assert recovered.session.snapshot_state() == live_state

        fresh = Session(ROOT, final, encoding=ENCODING, engine=engine)
        for mask in masks:
            got = recovered.session.result_for_mask(mask)
            want = fresh.result_for_mask(mask)
            assert (got.closure_mask, got.blocks) == (want.closure_mask,
                                                      want.blocks)
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
