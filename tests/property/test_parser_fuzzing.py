"""Property tests: the parsers never crash, they raise library errors.

Fuzzes arbitrary text (and near-miss mutations of valid notation) into
every textual entry point; the contract is "parse or raise a
:class:`~repro.exceptions.ReproError` subclass", never an arbitrary
exception or a hang.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import parse_attribute, parse_subattribute, unparse
from repro.dependencies import parse_dependency
from repro.exceptions import ReproError
from tests.strategies import nested_attributes

SETTINGS = settings(max_examples=200, deadline=None)

_notation_alphabet = st.text(
    alphabet="ABLR()[]λ,->> aZ19_",
    max_size=40,
)


@SETTINGS
@given(_notation_alphabet)
def test_parse_attribute_total(text):
    try:
        result = parse_attribute(text)
    except ReproError:
        return
    # Anything accepted must round-trip.
    assert parse_attribute(unparse(result)) == result


@SETTINGS
@given(nested_attributes(max_basis=6), _notation_alphabet)
def test_parse_subattribute_total(root, text):
    try:
        result = parse_subattribute(text, root)
    except ReproError:
        return
    from repro.attributes import is_subattribute

    assert is_subattribute(result, root)


@SETTINGS
@given(nested_attributes(max_basis=6), _notation_alphabet, _notation_alphabet)
def test_parse_dependency_total(root, lhs_text, rhs_text):
    for arrow in ("->", "->>"):
        try:
            dependency = parse_dependency(f"{lhs_text} {arrow} {rhs_text}", root)
        except ReproError:
            continue
        dependency.validate(root)


@SETTINGS
@given(nested_attributes(max_basis=6), st.integers(min_value=0, max_value=30))
def test_mutated_valid_notation(root, position):
    # Damage a valid attribute text at one position; the parser must
    # either still produce an element of Sub(root) or raise cleanly.
    text = unparse(root)
    if position >= len(text):
        return
    damaged = text[:position] + text[position + 1:]
    try:
        result = parse_subattribute(damaged, root)
    except ReproError:
        return
    from repro.attributes import is_subattribute

    assert is_subattribute(result, root)
