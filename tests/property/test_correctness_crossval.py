"""Property tests: cross-validation of Algorithm 5.1 (E6, Theorem 6.3).

Four independent oracles are played against the fast implementation:

1. the slow **structural reference** transcription of the same pseudocode;
2. the **witness construction** of Section 4.2 — a purely *semantic*
   completeness/soundness oracle (the witness instance satisfies Σ and
   decides every dependency with left-hand side X);
3. the **rule-derivation fixpoint** of the Theorem 4.6 system on tiny
   roots — a purely *syntactic* oracle;
4. the independent **classical Beeri** implementation on flat schemas.

An implementation bug would have to fool all four at once.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import BasisEncoding, count_subattributes, subattributes
from repro.core import compute_closure, implies, reference_closure
from repro.dependencies import (
    DependencySet,
    FunctionalDependency,
    MultivaluedDependency,
    satisfies,
    satisfies_all,
)
from repro.inference import derive_closure
from repro.relational import (
    RelFD,
    RelMVD,
    RelationSchema,
    relational_closure,
    relational_dependency_basis,
    sigma_to_nested,
    subattribute_to_subset,
    subset_to_subattribute,
)
from repro.values import ValueGenerator
from repro.witness import build_witness
from tests.strategies import roots_with_sigma

SETTINGS = settings(max_examples=60, deadline=None)


@st.composite
def closure_problems(draw, max_basis=6):
    root, enc, sigma = draw(roots_with_sigma(max_dependencies=3, max_basis=max_basis))
    x_mask = enc.down_close(draw(st.integers(min_value=0, max_value=enc.full)))
    return root, enc, sigma, x_mask


class TestFastVersusReference:
    @SETTINGS
    @given(closure_problems())
    def test_closure_and_blocks_agree(self, case):
        root, enc, sigma, x_mask = case
        fast = compute_closure(enc, x_mask, sigma)
        ref_closure, ref_db = reference_closure(root, enc.decode(x_mask), sigma)
        assert ref_closure == fast.closure
        assert ref_db == frozenset(enc.decode(mask) for mask in fast.blocks)


class TestKernelEquivalence:
    """The worklist kernel is bit-identical to the naive transcription."""

    @SETTINGS
    @given(closure_problems())
    def test_worklist_equals_naive_and_reference(self, case):
        root, enc, sigma, x_mask = case
        fast = compute_closure(enc, x_mask, sigma, kernel="worklist")
        naive = compute_closure(enc, x_mask, sigma, kernel="naive")
        assert fast.closure_mask == naive.closure_mask
        assert fast.blocks == naive.blocks
        ref_closure, ref_db = reference_closure(root, enc.decode(x_mask), sigma)
        assert ref_closure == fast.closure
        assert ref_db == frozenset(enc.decode(mask) for mask in fast.blocks)

    @SETTINGS
    @given(closure_problems())
    def test_auto_kernel_is_the_worklist_kernel(self, case):
        _, enc, sigma, x_mask = case
        auto = compute_closure(enc, x_mask, sigma)
        explicit = compute_closure(enc, x_mask, sigma, kernel="worklist")
        assert (auto.closure_mask, auto.blocks) == (
            explicit.closure_mask, explicit.blocks
        )


class TestWitnessOracle:
    @SETTINGS
    @given(closure_problems(max_basis=5))
    def test_witness_decides_membership_semantically(self, case):
        root, enc, sigma, x_mask = case
        x = enc.decode(x_mask)
        witness = build_witness(sigma, x, encoding=enc)  # verifies Σ itself
        for y_mask in enc.all_elements():
            y = enc.decode(y_mask)
            for dependency in (FunctionalDependency(x, y), MultivaluedDependency(x, y)):
                semantic = satisfies(root, witness.instance, dependency)
                syntactic = implies(sigma, dependency, encoding=enc)
                assert semantic == syntactic, dependency.display(root)


class TestDerivationOracle:
    @SETTINGS
    @given(closure_problems(max_basis=4))
    def test_rule_fixpoint_equals_algorithm_closure(self, case):
        root, enc, sigma, x_mask = case
        if count_subattributes(root) > 16:
            return  # the full fixpoint over Sub(N)² would be too large
        derivation = derive_closure(sigma, max_dependencies=500_000, max_rounds=200)
        assert derivation.exhausted
        x = enc.decode(x_mask)
        for y_mask in enc.all_elements():
            y = enc.decode(y_mask)
            for dependency in (FunctionalDependency(x, y), MultivaluedDependency(x, y)):
                assert (dependency in derivation) == implies(
                    sigma, dependency, encoding=enc
                ), dependency.display(root)


class TestRelationalParity:
    @SETTINGS
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=2**16))
    def test_beeri_agrees_on_flat_schemas(self, width, seed):
        rng = random.Random(seed)
        names = [chr(65 + i) for i in range(width)]
        schema = RelationSchema(names)
        sigma_rel = []
        for _ in range(rng.randint(0, 4)):
            lhs = set(rng.sample(names, rng.randint(1, width)))
            rhs = set(rng.sample(names, rng.randint(1, width)))
            maker = RelFD if rng.random() < 0.5 else RelMVD
            sigma_rel.append(maker(lhs, rhs))
        sigma_nested = sigma_to_nested(schema, sigma_rel)
        enc = BasisEncoding(sigma_nested.root)
        x = set(rng.sample(names, rng.randint(0, width)))

        fast = compute_closure(enc, subset_to_subattribute(schema, x), sigma_nested)
        assert subattribute_to_subset(schema, fast.closure) == relational_closure(
            schema, x, sigma_rel
        )
        nested_basis = {
            subattribute_to_subset(schema, member)
            for member in fast.dependency_basis()
        }
        assert nested_basis == set(
            relational_dependency_basis(schema, x, sigma_rel)
        )


class TestAlgorithmInvariants:
    @SETTINGS
    @given(closure_problems())
    def test_x_below_its_closure(self, case):
        _, enc, sigma, x_mask = case
        result = compute_closure(enc, x_mask, sigma)
        assert enc.le(x_mask, result.closure_mask)

    @SETTINGS
    @given(closure_problems())
    def test_closure_is_idempotent(self, case):
        _, enc, sigma, x_mask = case
        first = compute_closure(enc, x_mask, sigma)
        second = compute_closure(enc, first.closure_mask, sigma)
        assert second.closure_mask == first.closure_mask

    @SETTINGS
    @given(closure_problems())
    def test_closure_monotone_in_x(self, case):
        _, enc, sigma, x_mask = case
        smaller = enc.down_close(enc.generators(x_mask) >> 1)  # some subset
        small_closure = compute_closure(enc, enc.meet(smaller, x_mask), sigma)
        big_closure = compute_closure(enc, x_mask, sigma)
        assert enc.le(small_closure.closure_mask | 0, big_closure.closure_mask) or (
            not enc.le(enc.meet(smaller, x_mask), x_mask)
        )

    @SETTINGS
    @given(closure_problems())
    def test_blocks_partition_maximal_basis(self, case):
        _, enc, sigma, x_mask = case
        result = compute_closure(enc, x_mask, sigma)
        covered = 0
        for block in result.blocks:
            top = enc.maximal_of(block)
            assert not (covered & top)
            covered |= top
        assert covered == enc.maximal

    @SETTINGS
    @given(closure_problems())
    def test_block_meets_stay_inside_closure(self, case):
        # The §4.2 invariant enabling the witness construction.
        _, enc, sigma, x_mask = case
        result = compute_closure(enc, x_mask, sigma)
        blocks = sorted(result.blocks)
        for i, first in enumerate(blocks):
            for second in blocks[i + 1:]:
                assert (first & second) & ~result.closure_mask == 0

    @SETTINGS
    @given(closure_problems(), st.integers(min_value=0, max_value=2**16))
    def test_algorithm_sound_on_sigma_satisfying_instances(self, case, seed):
        # Anything claimed implied must hold in random instances that
        # happen to satisfy Σ.
        root, enc, sigma, x_mask = case
        generator = ValueGenerator(random.Random(seed), max_list_length=2)
        instance = generator.instance(root, 6)
        if not satisfies_all(root, instance, sigma):
            return
        result = compute_closure(enc, x_mask, sigma)
        x = enc.decode(x_mask)
        fd = FunctionalDependency(x, result.closure)
        assert satisfies(root, instance, fd)
        for member in result.dependency_basis_masks():
            mvd = MultivaluedDependency(x, enc.decode(member))
            assert satisfies(root, instance, mvd)


class TestChaseOracle:
    @SETTINGS
    @given(closure_problems(max_basis=5), st.integers(min_value=0, max_value=2**16))
    def test_chased_instances_satisfy_implied_mvds(self, case, seed):
        # One more independent oracle: chase a random instance to satisfy
        # Σ's MVDs; every MVD the algorithm claims implied (with a stated
        # left-hand side) must hold in the chased instance too.
        from repro.chase import ChaseFailure, chase
        from repro.exceptions import ReproError

        root, enc, sigma, _ = case
        if sigma.fds():
            return  # FD checks would abort most random chases
        generator = ValueGenerator(random.Random(seed), max_list_length=2)
        instance = generator.instance(root, 4)
        try:
            result = chase(root, instance, sigma, max_tuples=3_000)
        except (ChaseFailure, ReproError):
            return  # length conflicts or blow-ups: nothing to check
        assert satisfies_all(root, result.instance, sigma)
        for dependency in sigma.mvds():
            closure_result = compute_closure(enc, enc.encode(dependency.lhs), sigma)
            for member in closure_result.dependency_basis_masks():
                mvd = MultivaluedDependency(dependency.lhs, enc.decode(member))
                assert satisfies(root, result.instance, mvd), mvd.display(root)
