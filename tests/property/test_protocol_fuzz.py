"""Wire-protocol fuzzing against a *live* server.

The property: whatever bytes a client writes, the server answers each
frame with a typed protocol response or drops the connection cleanly —
it never crashes, never emits a malformed line, and keeps serving
well-formed requests afterwards.

One server takes every Hypothesis example (it is started once for the
module, in a background thread): surviving the whole hostile stream
without a restart *is* the property, so the final test re-checks that
the very same process still reasons correctly.
"""

import asyncio
import json
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ReasoningServer, ServeConfig
from repro.serve.protocol import OPS, PROTOCOL_VERSION, ErrorCode

#: Small on purpose: the oversized-line disconnect stays cheap to hit.
MAX_LINE = 4096

#: Every typed code the server may legitimately answer with.
KNOWN_CODES = {value for name, value in vars(ErrorCode).items()
               if name.isupper()}

PROBE_ID = "fuzz-probe"


@pytest.fixture(scope="module")
def server_address():
    """One live server for the whole module, on a background loop."""
    box = {}
    ready = threading.Event()

    async def main():
        config = ServeConfig(port=0, idle_ttl=None,
                             max_line_bytes=MAX_LINE,
                             request_timeout=10.0)
        server = ReasoningServer(config)
        await server.start()
        box["server"] = server
        box["loop"] = asyncio.get_running_loop()
        box["address"] = server.address
        ready.set()
        await server.serve_forever(handle_signals=False)

    thread = threading.Thread(target=lambda: asyncio.run(main()),
                              daemon=True)
    thread.start()
    assert ready.wait(10), "server did not come up"
    yield box["address"]
    future = asyncio.run_coroutine_threadsafe(box["server"].shutdown(),
                                              box["loop"])
    future.result(timeout=10)
    thread.join(timeout=10)


def frame(value) -> bytes:
    return json.dumps(value).encode("utf-8") + b"\n"


def probe_frame() -> bytes:
    return frame({"v": PROTOCOL_VERSION, "id": PROBE_ID, "op": "ping",
                  "params": {}})


def exchange(address, payload: bytes) -> list[dict]:
    """Send ``payload`` then a newline and a well-formed ping; collect
    every response line until the ping answers or the server hangs up.

    Every line the server emits must be valid JSON — a decode failure
    here fails the test, which is exactly the point.
    """
    responses = []
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(payload + b"\n" + probe_frame())
        reader = sock.makefile("rb")
        while True:
            line = reader.readline()
            if not line:
                break  # clean disconnect
            assert line.endswith(b"\n")
            data = json.loads(line)
            responses.append(data)
            if data.get("id") == PROBE_ID:
                break
    return responses


def assert_typed(responses) -> None:
    """Every response is structurally a protocol message with a known
    typed code."""
    for data in responses:
        assert data.get("v") == PROTOCOL_VERSION
        assert isinstance(data.get("ok"), bool)
        if data["ok"]:
            assert isinstance(data.get("result"), dict)
        else:
            error = data.get("error")
            assert isinstance(error, dict)
            assert error.get("code") in KNOWN_CODES
            assert isinstance(error.get("message"), str)


def assert_alive(address) -> None:
    """A fresh connection's well-formed ping still answers ``ok``."""
    responses = exchange(address, b"")
    assert responses and responses[-1]["ok"] is True


json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2 ** 40, max_value=2 ** 40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=8), children,
                                        max_size=4)),
    max_leaves=10)

#: Structurally hostile requests: each field independently absent,
#: wrong-typed, or valid — covering the whole decode_request ladder.
request_shapes = st.fixed_dictionaries({}, optional={
    "v": (st.none() | st.booleans()
          | st.integers(min_value=-3, max_value=3)
          | st.just(PROTOCOL_VERSION)),
    "id": (st.none() | st.booleans() | st.integers() | st.text(max_size=6)
           | st.lists(st.integers(), max_size=2)),
    "op": st.sampled_from(sorted(OPS)) | st.text(max_size=10),
    "params": json_values,
})

#: Known param names with hostile values: exercises every command's
#: from_params validation (and the executor behind it) over the wire.
param_names = st.sampled_from([
    "session", "dependency", "dependencies", "x", "name", "schema",
    "engine", "replace", "from_seq", "max_records", "wait", "follower",
    "seq", "min_seq",
])
hostile_params = st.dictionaries(param_names, json_values, max_size=4)


class TestFuzz:
    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(max_size=256))
    def test_binary_garbage_gets_typed_errors_or_a_clean_disconnect(
            self, server_address, payload):
        assert_typed(exchange(server_address, payload))
        assert_alive(server_address)

    @settings(max_examples=25, deadline=None)
    @given(value=json_values)
    def test_wrong_shape_json_is_rejected_typed(self, server_address,
                                                value):
        assert_typed(exchange(server_address, frame(value)))
        assert_alive(server_address)

    @settings(max_examples=25, deadline=None)
    @given(shape=request_shapes)
    def test_structurally_broken_requests_are_rejected_typed(
            self, server_address, shape):
        assert_typed(exchange(server_address, frame(shape)))
        assert_alive(server_address)

    @settings(max_examples=25, deadline=None)
    @given(op=st.sampled_from(sorted(OPS)), params=hostile_params)
    def test_valid_ops_with_hostile_params_answer_typed(
            self, server_address, op, params):
        payload = frame({"v": PROTOCOL_VERSION, "id": 1, "op": op,
                         "params": params})
        assert_typed(exchange(server_address, payload))
        assert_alive(server_address)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_truncated_frames_are_ignored_at_eof(self, server_address,
                                                 data):
        whole = frame({"v": PROTOCOL_VERSION, "id": 2, "op": "implies",
                       "params": {"session": "none", "dependency": "x"}})
        cut = data.draw(st.integers(min_value=0, max_value=len(whole) - 1))
        with socket.create_connection(server_address, timeout=10) as sock:
            sock.sendall(whole[:cut])
            sock.shutdown(socket.SHUT_WR)
            reader = sock.makefile("rb")
            for line in reader.read().splitlines():
                data_out = json.loads(line)
                assert isinstance(data_out.get("ok"), bool)
        assert_alive(server_address)

    def test_oversized_lines_disconnect_without_a_response(
            self, server_address):
        responses = exchange(server_address, b"x" * (MAX_LINE + 64))
        assert responses == []  # cannot resync: the server hung up
        assert_alive(server_address)


def test_the_fuzzed_server_still_reasons(server_address):
    """After the entire hostile stream above, the same process still
    opens sessions and answers implication queries correctly."""
    from repro.serve import Client

    host, port = server_address
    with Client.connect(host, port) as client:
        client.open("survivor", "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
                    ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
                    replace=True)
        assert client.implies(
            "survivor", "Pubcrawl(Person) -> Pubcrawl(Visit[λ])") is True
        assert client.implies(
            "survivor",
            "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])") is False
        client.close_session("survivor")
