"""Property tests: roundtrips and the constructive machinery.

Covers the interfaces the other property modules take for granted: the
paper-notation printer/parser pair, JSON interchange, amalgamation, the
exact-agreement realiser, minimal covers and decomposition losslessness —
each as a law over randomized inputs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import parse_attribute, parse_subattribute, unparse, unparse_abbreviated
from repro.core import equivalent, minimal_cover
from repro.io import instance_from_json, instance_to_json, value_from_json, value_to_json
from repro.values import ValueGenerator, amalgamate, project
from repro.witness import PairRealizer, build_witness
from repro.exceptions import WitnessConstructionError
from tests.strategies import (
    nested_attributes,
    roots_with_element_pairs,
    roots_with_elements,
    roots_with_sigma,
)

SETTINGS = settings(max_examples=100, deadline=None)


@SETTINGS
@given(nested_attributes())
def test_unparse_parse_roundtrip(root):
    assert parse_attribute(unparse(root)) == root


@SETTINGS
@given(roots_with_elements())
def test_abbreviated_display_roundtrip(case):
    # The paper's λ-omission convention must resolve back to the same
    # element — including roots with duplicate heads, where the printer
    # falls back to the explicit positional form.
    root, enc, (mask,) = case
    element = enc.decode(mask)
    shown = unparse_abbreviated(element, root)
    assert parse_subattribute(shown, root) == element


@SETTINGS
@given(nested_attributes(max_basis=6), st.integers(min_value=0, max_value=2**16))
def test_json_value_roundtrip(root, seed):
    generator = ValueGenerator(random.Random(seed), max_list_length=2)
    value = generator.value(root)
    assert value_from_json(root, value_to_json(root, value)) == value


@SETTINGS
@given(nested_attributes(max_basis=6), st.integers(min_value=0, max_value=2**16))
def test_json_instance_roundtrip(root, seed):
    generator = ValueGenerator(random.Random(seed), max_list_length=2)
    instance = generator.instance(root, 5)
    assert instance_from_json(root, instance_to_json(root, instance)) == instance


@SETTINGS
@given(roots_with_element_pairs(max_basis=6),
       st.integers(min_value=0, max_value=2**16))
def test_amalgamation_projects_back(case, seed):
    # For any A, B and value t of dom(N): amalgamating the projections of
    # t onto A and B (always compatible) recovers π_{A⊔B}(t).
    root, enc, (a_mask, b_mask) = case
    a_attr, b_attr = enc.decode(a_mask), enc.decode(b_mask)
    value = ValueGenerator(random.Random(seed), max_list_length=2).value(root)
    combined = amalgamate(
        root, a_attr, b_attr,
        project(root, a_attr, value),
        project(root, b_attr, value),
    )
    joined = enc.decode(enc.join(a_mask, b_mask))
    assert combined == project(root, joined, value)


@SETTINGS
@given(roots_with_elements(max_basis=6))
def test_pair_realizer_exact_on_random_elements(case):
    root, enc, (mask,) = case
    agreement = enc.decode(mask)
    first, second = PairRealizer().realize(root, agreement)
    for other in enc.all_elements():
        element = enc.decode(other)
        agrees = project(root, element, first) == project(root, element, second)
        assert agrees == enc.le(other, mask), element


@SETTINGS
@given(roots_with_sigma(max_dependencies=4, max_basis=6))
def test_minimal_cover_is_equivalent_and_irredundant(case):
    root, enc, sigma = case
    cover = minimal_cover(sigma, encoding=enc)
    assert equivalent(cover, sigma, encoding=enc)
    from repro.core import is_redundant

    for dependency in cover:
        assert not is_redundant(cover, dependency, encoding=enc)


@SETTINGS
@given(roots_with_sigma(max_dependencies=2, max_basis=5))
def test_decomposition_lossless_on_witnesses(case):
    # The 4NF decomposition must re-join Σ-satisfying data losslessly;
    # witness instances are the canonical Σ-satisfying data.
    from repro.attributes import join as attr_join
    from repro.normalization import decompose_4nf
    from repro.values import generalised_join, project_instance

    root, enc, sigma = case
    try:
        witness = build_witness(sigma, enc.decode(0), encoding=enc)
    except WitnessConstructionError:
        return  # too many free blocks for this random Σ; skip
    decomposition = decompose_4nf(sigma, encoding=enc)
    components = list(decomposition.components)
    current_attr = components[0]
    current = project_instance(root, current_attr, witness.instance)
    for component in components[1:]:
        projection = project_instance(root, component, witness.instance)
        current = generalised_join(
            root, current_attr, component, current, projection
        )
        current_attr = attr_join(root, current_attr, component)
    assert current_attr == root
    assert current == witness.instance


@SETTINGS
@given(roots_with_sigma(max_dependencies=2, max_basis=5),
       st.integers(min_value=0, max_value=2**16))
def test_chase_is_a_closure_operator(case, seed):
    # Increasing, monotone, idempotent — on MVD-only Σ where it succeeds.
    from repro.chase import ChaseFailure, chase
    from repro.exceptions import ReproError

    root, enc, sigma = case
    if sigma.fds():
        return
    generator = ValueGenerator(random.Random(seed), max_list_length=2)
    small = generator.instance(root, 3)
    big = small | generator.instance(root, 2)
    try:
        chased_small = chase(root, small, sigma, max_tuples=2_000)
        chased_big = chase(root, big, sigma, max_tuples=2_000)
    except (ChaseFailure, ReproError):
        return
    # increasing
    assert small <= chased_small.instance
    # monotone
    assert chased_small.instance <= chased_big.instance
    # idempotent
    again = chase(root, chased_small.instance, sigma, max_tuples=2_000)
    assert again.instance == chased_small.instance
