"""Property tests: partial order and Brouwerian algebra laws (E12).

Theorem 3.9 says ``(Sub(N), ≤, ⊔, ⊓, ∸, N)`` is a Brouwerian algebra;
these properties check every axiom — and the identities the paper uses
along the way — on random roots and elements via the bitmask encoding
(which the companion suite ``test_encoding_agreement`` ties back to the
structural Definition 3.8 operations).
"""

from hypothesis import given, settings

from tests.strategies import (
    roots_with_element_pairs,
    roots_with_element_triples,
    roots_with_elements,
)

SETTINGS = settings(max_examples=120, deadline=None)


@SETTINGS
@given(roots_with_element_pairs())
def test_le_is_antisymmetric(case):
    _, enc, (x, y) = case
    if enc.le(x, y) and enc.le(y, x):
        assert x == y


@SETTINGS
@given(roots_with_element_triples())
def test_le_is_transitive(case):
    _, enc, (x, y, z) = case
    if enc.le(x, y) and enc.le(y, z):
        assert enc.le(x, z)


@SETTINGS
@given(roots_with_element_pairs())
def test_join_is_least_upper_bound(case):
    _, enc, (x, y) = case
    j = enc.join(x, y)
    assert enc.le(x, j) and enc.le(y, j)


@SETTINGS
@given(roots_with_element_triples())
def test_join_least_among_upper_bounds(case):
    _, enc, (x, y, z) = case
    if enc.le(x, z) and enc.le(y, z):
        assert enc.le(enc.join(x, y), z)


@SETTINGS
@given(roots_with_element_pairs())
def test_meet_is_greatest_lower_bound(case):
    _, enc, (x, y) = case
    m = enc.meet(x, y)
    assert enc.le(m, x) and enc.le(m, y)


@SETTINGS
@given(roots_with_element_triples())
def test_meet_greatest_among_lower_bounds(case):
    _, enc, (x, y, z) = case
    if enc.le(z, x) and enc.le(z, y):
        assert enc.le(z, enc.meet(x, y))


@SETTINGS
@given(roots_with_element_pairs())
def test_absorption_laws(case):
    _, enc, (x, y) = case
    assert enc.join(x, enc.meet(x, y)) == x
    assert enc.meet(x, enc.join(x, y)) == x


@SETTINGS
@given(roots_with_element_triples())
def test_distributivity(case):
    _, enc, (x, y, z) = case
    assert enc.meet(x, enc.join(y, z)) == enc.join(enc.meet(x, y), enc.meet(x, z))
    assert enc.join(x, enc.meet(y, z)) == enc.meet(enc.join(x, y), enc.join(x, z))


@SETTINGS
@given(roots_with_element_triples())
def test_brouwerian_adjunction(case):
    # Z ∸ Y ≤ X  iff  Z ≤ Y ⊔ X — the defining property of ∸ (§3.3).
    _, enc, (z, y, x) = case
    assert enc.le(enc.pseudo_difference(z, y), x) == enc.le(z, enc.join(y, x))


@SETTINGS
@given(roots_with_element_pairs())
def test_pseudo_difference_bottom_iff_le(case):
    _, enc, (z, y) = case
    assert (enc.pseudo_difference(z, y) == 0) == enc.le(z, y)


@SETTINGS
@given(roots_with_elements())
def test_complement_characterisation(case):
    # Y^C is the least X with X ⊔ Y = N.
    _, enc, (y,) = case
    y_c = enc.complement(y)
    assert enc.join(y, y_c) == enc.full
    # minimality: removing any generator breaks the join property
    for i in range(enc.size):
        bit = 1 << i
        if y_c & bit and enc.generators(y_c) & bit:
            smaller = enc.down_close(enc.generators(y_c) & ~bit)
            if smaller != y_c:
                assert enc.join(y, smaller) != enc.full or enc.le(bit, smaller)


@SETTINGS
@given(roots_with_elements())
def test_double_complement_decomposition(case):
    # X = X^CC ⊔ (X ⊓ X^C) (§4.2).
    _, enc, (x,) = case
    assert enc.join(enc.double_complement(x), enc.meet(x, enc.complement(x))) == x


@SETTINGS
@given(roots_with_elements())
def test_triple_complement_stabilises(case):
    _, enc, (x,) = case
    assert enc.complement(enc.double_complement(x)) == enc.complement(x)


@SETTINGS
@given(roots_with_elements())
def test_double_complement_idempotent(case):
    _, enc, (x,) = case
    cc = enc.double_complement(x)
    assert enc.double_complement(cc) == cc
