"""Property tests: the order utilities on random encoded lattices."""

from hypothesis import given, settings

from repro.attributes.order import (
    atoms,
    coatoms,
    lower_covers,
    maximal_chain,
    rank,
    upper_covers,
)
from tests.strategies import roots_with_element_pairs, roots_with_elements

SETTINGS = settings(max_examples=100, deadline=None)


@SETTINGS
@given(roots_with_elements())
def test_upper_covers_are_minimal_strict_supersets(case):
    _, enc, (mask,) = case
    for cover in upper_covers(enc, mask):
        assert enc.le(mask, cover) and cover != mask
        assert rank(enc, cover) == rank(enc, mask) + 1
        assert enc.is_downclosed(cover)


@SETTINGS
@given(roots_with_elements())
def test_cover_relations_are_mutually_inverse(case):
    _, enc, (mask,) = case
    for cover in upper_covers(enc, mask):
        assert mask in lower_covers(enc, cover)
    for covered in lower_covers(enc, mask):
        assert mask in upper_covers(enc, covered)


@SETTINGS
@given(roots_with_element_pairs())
def test_maximal_chain_between_comparable_elements(case):
    _, enc, (x, y) = case
    lower, upper = enc.meet(x, y), enc.join(x, y)
    chain = maximal_chain(enc, lower, upper)
    assert chain[0] == lower and chain[-1] == upper
    assert len(chain) == rank(enc, upper) - rank(enc, lower) + 1
    for a, b in zip(chain, chain[1:]):
        assert b in upper_covers(enc, a)


@SETTINGS
@given(roots_with_elements())
def test_atoms_and_coatoms_are_extreme_covers(case):
    _, enc, _ = case
    for atom in atoms(enc):
        assert rank(enc, atom) == 1
    for coatom in coatoms(enc):
        assert rank(enc, coatom) == enc.size - 1


@SETTINGS
@given(roots_with_elements())
def test_every_nonbottom_element_sits_above_an_atom(case):
    _, enc, (mask,) = case
    if mask == 0:
        return
    assert any(enc.le(atom, mask) for atom in atoms(enc))
