"""Hypothesis strategies for nested attributes, elements and instances.

The strategies keep roots small (basis size ≤ 10 or so) — the algebra and
algorithm complexity is combinatorial, and the interesting structure
(lists inside records inside lists, repeated labels, bare lengths) appears
at tiny sizes already.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.attributes import BasisEncoding, Flat, ListAttr, NestedAttribute, Record
from repro.attributes.basis import basis_size
from repro.dependencies import DependencySet, FunctionalDependency, MultivaluedDependency
from repro.values import ValueGenerator

__all__ = [
    "nested_attributes",
    "roots_with_elements",
    "roots_with_element_pairs",
    "roots_with_element_triples",
    "roots_with_sigma",
    "roots_with_sigma_and_instance",
]

_flat_names = st.sampled_from(["A", "B", "C", "D"])
_labels = st.sampled_from(["L", "M", "R", "S"])


def nested_attributes(max_basis: int = 8) -> st.SearchStrategy[NestedAttribute]:
    """Random nested attributes with bounded basis size (never ``λ``)."""
    base = st.builds(Flat, _flat_names)
    attributes = st.recursive(
        base,
        lambda children: st.one_of(
            st.builds(ListAttr, _labels, children),
            st.builds(
                lambda label, components: Record(label, tuple(components)),
                _labels,
                st.lists(children, min_size=1, max_size=3),
            ),
        ),
        max_leaves=4,
    )
    return attributes.filter(lambda attribute: basis_size(attribute) <= max_basis)


@st.composite
def roots_with_elements(draw, element_count: int = 1, max_basis: int = 8):
    """``(root, encoding, [element masks])`` with uniform random elements."""
    root = draw(nested_attributes(max_basis))
    encoding = BasisEncoding(root)
    masks = []
    for _ in range(element_count):
        generators = draw(st.integers(min_value=0, max_value=encoding.full))
        masks.append(encoding.down_close(generators))
    return root, encoding, masks


def roots_with_element_pairs(max_basis: int = 8):
    return roots_with_elements(element_count=2, max_basis=max_basis)


def roots_with_element_triples(max_basis: int = 8):
    return roots_with_elements(element_count=3, max_basis=max_basis)


@st.composite
def roots_with_sigma(draw, max_dependencies: int = 4, max_basis: int = 7):
    """``(root, encoding, DependencySet)`` with random FDs and MVDs."""
    root = draw(nested_attributes(max_basis))
    encoding = BasisEncoding(root)
    count = draw(st.integers(min_value=0, max_value=max_dependencies))
    dependencies = []
    for _ in range(count):
        lhs = encoding.decode(
            encoding.down_close(draw(st.integers(min_value=0, max_value=encoding.full)))
        )
        rhs = encoding.decode(
            encoding.down_close(draw(st.integers(min_value=0, max_value=encoding.full)))
        )
        if draw(st.booleans()):
            dependencies.append(MultivaluedDependency(lhs, rhs))
        else:
            dependencies.append(FunctionalDependency(lhs, rhs))
    return root, encoding, DependencySet(root, dependencies)


@st.composite
def roots_with_sigma_and_instance(draw, max_dependencies: int = 3,
                                  max_basis: int = 6, max_tuples: int = 8):
    """``(root, encoding, sigma, instance)`` with a random small instance."""
    root, encoding, sigma = draw(
        roots_with_sigma(max_dependencies=max_dependencies, max_basis=max_basis)
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    size = draw(st.integers(min_value=0, max_value=max_tuples))
    generator = ValueGenerator(random.Random(seed), max_list_length=2)
    instance = generator.instance(root, size)
    return root, encoding, sigma, instance
