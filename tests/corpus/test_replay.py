"""Replay the committed regression corpus through all three engines.

Every ``tests/corpus/*.json`` entry bundles a schema, a dependency set
Σ, membership queries with their expected verdicts, and (optionally)
expected closures in abbreviated paper notation.  The entries are
seeded from the paper's worked examples (Figures 3-4, Pubcrawl) and
from hypothesis-style reductions of shapes that have historically been
easy to get wrong (mixed-meet overlaps, worklist requeue chains,
degenerate Σ).

Each query is decided four ways — the worklist kernel with and without
a compiled plan, the naive kernel, and the structural reference
implementation — and the test asserts bit-identical agreement on
``(X⁺, DB_new)`` (plus ``passes`` for the plan-on run) *and* the
recorded verdict.  A regression would have to be introduced several
times, in several formalisms, to slip through.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import compile_plan, compute_closure, reference_closure, \
    reference_dependency_basis
from repro.core.closure import _as_mask_sigma
from repro.schema import Schema

CORPUS_DIR = Path(__file__).resolve().parent
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    with path.open(encoding="utf-8") as handle:
        return json.load(handle)


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_entry_shape(path):
    entry = _load(path)
    assert entry["name"] == path.stem
    assert entry["source"]
    assert isinstance(entry["sigma"], list)
    assert entry["queries"], "an entry without queries pins nothing"
    for query in entry["queries"]:
        assert set(query) == {"dependency", "expected"}
        assert isinstance(query["expected"], bool)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_three_way_agreement_and_verdicts(path):
    entry = _load(path)
    schema = Schema(entry["schema"])
    encoding = schema.encoding
    sigma = schema.dependencies(*entry["sigma"])
    fd_masks, mvd_masks = _as_mask_sigma(encoding, sigma)
    plan = compile_plan(encoding, fd_masks, mvd_masks)

    for query in entry["queries"]:
        dependency = schema.dependency(query["dependency"])

        worklist = compute_closure(encoding, dependency.lhs, sigma,
                                   kernel="worklist")
        planned = compute_closure(encoding, dependency.lhs, sigma,
                                  kernel="worklist", plan=plan)
        naive = compute_closure(encoding, dependency.lhs, sigma,
                                kernel="naive")
        assert worklist.closure_mask == naive.closure_mask, query
        assert worklist.blocks == naive.blocks, query
        # The compiled plan is transparent down to the pass count.
        assert (planned.closure_mask, planned.blocks, planned.passes) == \
            (worklist.closure_mask, worklist.blocks, worklist.passes), query

        ref_plus, ref_db = reference_closure(schema.root, dependency.lhs, sigma)
        assert encoding.encode(ref_plus) == worklist.closure_mask, query
        assert frozenset(encoding.encode(w) for w in ref_db) == worklist.blocks, query

        ref_basis = reference_dependency_basis(schema.root, dependency.lhs, sigma)
        assert frozenset(encoding.encode(m) for m in ref_basis) == \
            worklist.dependency_basis_masks(), query

        rhs_mask = encoding.encode(dependency.rhs)
        if dependency.is_fd:
            verdict = worklist.implies_fd_rhs(rhs_mask)
        else:
            verdict = worklist.implies_mvd_rhs(rhs_mask)
        assert verdict == query["expected"], query
        assert schema.implies(sigma, query["dependency"]) == query["expected"], query


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_expected_closures(path):
    entry = _load(path)
    schema = Schema(entry["schema"])
    sigma = schema.dependencies(*entry["sigma"])
    for expectation in entry.get("closures", ()):
        closure = schema.closure(sigma, expectation["x"])
        assert schema.show(closure) == expectation["closure"], expectation
