"""Chaos/differential test: a faulted server must converge to the
fault-free truth.

Each seeded :class:`FaultPlan` in the matrix is run against the same
add/retract/implies/closure/basis workload, driven through a
:class:`RetryingClient`.  The resulting session fingerprint — Σ size,
generation, every probe verdict, closure and basis — is serialised to
canonical JSON and must be **byte-identical** to the fingerprint of a
fault-free replay.  Faults that fire before execution (injected errors,
pre-drops) never mutate state, faults that fire after execution
(truncates, post-drops) are only placed on idempotent requests, so the
retry layer has no excuse: any divergence is a real resilience bug.
"""

import asyncio
import contextlib
import json
import random
import threading

import pytest

from repro.serve import (
    CircuitBreaker,
    FaultPlan,
    ReasoningServer,
    RetryingClient,
    RetryPolicy,
    ServeConfig,
)

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
IMPLIED_FD = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
IMPLIED_MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])"
NOT_IMPLIED = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"

PROBES = [
    IMPLIED_FD,
    IMPLIED_MVD,
    NOT_IMPLIED,
    "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
    "λ -> Pubcrawl(Visit[λ])",
]
LHS_PROBES = [
    "Pubcrawl(Person)",
    "Pubcrawl(Visit[λ])",
    "Pubcrawl(Visit[Drink(Pub)])",
]

#: The fault matrix.  Mutating ops only ever receive *pre-execution*
#: faults (injected errors, pre-drops) — a post-delivery fault on
#: ``retract`` would make the lost-response retry hit ``bad_params``,
#: which is a semantics problem of the workload, not of the resilience
#: layer under test.
PLANS = {
    "overload-every-3rd": {
        "seed": 11,
        "rules": [{"op": "*", "kind": "error", "code": "overloaded",
                   "every": 3}],
    },
    "flaky-implies": {
        "seed": 22,
        "rules": [{"op": "implies", "kind": "error", "code": "timeout",
                   "p": 0.5}],
    },
    "drops-on-mutations": {
        "seed": 33,
        "rules": [
            {"op": "add", "kind": "drop", "when": "pre", "every": 2},
            {"op": "retract", "kind": "error", "code": "overloaded",
             "every": 1, "times": 1},
            {"op": "*", "kind": "delay", "seconds": 0.002, "every": 7},
        ],
    },
    "torn-reads": {
        "seed": 44,
        "rules": [
            {"op": "closure", "kind": "truncate", "every": 2},
            {"op": "basis", "kind": "drop", "when": "post", "every": 2},
        ],
    },
    "mixed-mayhem": {
        "seed": 55,
        "rules": [
            {"op": "*", "kind": "error", "code": "overloaded", "p": 0.2},
            {"op": "implies", "kind": "drop", "when": "pre", "p": 0.25},
            {"op": "ping", "kind": "truncate", "every": 1, "times": 1},
        ],
    },
}


@contextlib.contextmanager
def served(fault_plan=None):
    ready = threading.Event()
    box = {}

    def serve():
        async def main():
            config = ServeConfig(idle_ttl=None, workers=0,
                                 fault_plan=fault_plan)
            async with ReasoningServer(config) as server:
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                box["address"] = server.address
                ready.set()
                await server._stopped.wait()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "server thread failed to start"
    try:
        yield box["address"], box["server"]
    finally:
        box["loop"].call_soon_threadsafe(
            lambda: asyncio.ensure_future(box["server"].shutdown()))
        thread.join(timeout=10)
        assert not thread.is_alive()


def chaos_client(host, port):
    """A retrying client tuned for the matrix: fast sleeps, a patient
    breaker (the plans inject long failure bursts on purpose) and a
    seeded RNG so even the backoff draws are reproducible."""
    return RetryingClient.connect(
        host, port,
        policy=RetryPolicy(max_retries=10, base_delay=0.001,
                           max_delay=0.01, deadline=60.0),
        breaker=CircuitBreaker(failure_threshold=1000),
        rng=random.Random(0))


def workload(client):
    """The differential workload; returns the session fingerprint."""
    client.ping()
    client.open("chaos", SCHEMA, [MVD])
    client.add("chaos", NOT_IMPLIED)
    client.add("chaos", IMPLIED_MVD)
    client.retract("chaos", NOT_IMPLIED)

    fingerprint = {
        "implies": [client.implies("chaos", probe) for probe in PROBES],
        "batch": client.implies_batch("chaos", PROBES),
        "closures": {x: client.closure("chaos", x) for x in LHS_PROBES},
        "bases": {x: client.basis("chaos", x) for x in LHS_PROBES},
    }
    client.add("chaos", "Pubcrawl(Visit[λ]) -> Pubcrawl(Person)")
    fingerprint["implies_after_add"] = [client.implies("chaos", probe)
                                        for probe in PROBES]
    fingerprint["closure_after_add"] = client.closure(
        "chaos", "Pubcrawl(Visit[λ])")
    session = client.metrics("chaos")["sessions"]["chaos"]
    fingerprint["sigma"] = session["sigma"]
    fingerprint["generation"] = session["generation"]
    return fingerprint


def fingerprint_bytes(result):
    return json.dumps(result, sort_keys=True, ensure_ascii=False,
                      separators=(",", ":")).encode("utf-8")


@pytest.fixture(scope="module")
def baseline():
    """The fault-free truth every chaotic run must reproduce."""
    with served() as ((host, port), _server):
        with chaos_client(host, port) as client:
            result = workload(client)
            assert not client.counters, "fault-free run must not retry"
    return fingerprint_bytes(result)


@pytest.mark.parametrize("name", sorted(PLANS))
def test_faulted_run_matches_fault_free_replay(name, baseline):
    plan = FaultPlan.from_json(json.dumps(PLANS[name]))
    with served(fault_plan=plan) as ((host, port), server):
        with chaos_client(host, port) as client:
            result = workload(client)
            # the plan actually bit: faults fired and the client healed
            assert server.counters["serve.fault.injected"] > 0
            assert (client.counters["client.retry.attempts"]
                    + client.counters["client.retry.reconnects"]) > 0
    assert fingerprint_bytes(result) == baseline


def test_same_plan_same_injections():
    """The chaos matrix itself is deterministic: replaying a seeded plan
    against the same workload injects the identical fault sequence."""
    plan_json = json.dumps(PLANS["drops-on-mutations"])

    def injections():
        with served(FaultPlan.from_json(plan_json)) as ((host, port), server):
            with chaos_client(host, port) as client:
                workload(client)
            return list(server.faults.injected)

    first = injections()
    second = injections()
    assert first == second
    assert first  # the plan fired at least once
