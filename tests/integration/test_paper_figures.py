"""Integration: Figures 1 and 2 and Examples 4.8 / 4.12 (E1–E3)."""

import pytest

from repro.attributes import (
    BasisEncoding,
    basis,
    complement,
    count_subattributes,
    is_possessed_by,
    is_subattribute,
    join,
    maximal_basis,
    meet,
    non_maximal_basis,
    pseudo_difference,
    subattributes,
    unparse_abbreviated,
)
from repro.workloads import (
    EXAMPLE_4_8_BASIS,
    EXAMPLE_4_8_MAXIMAL,
    EXAMPLE_4_8_NON_MAXIMAL,
    FIGURE_1_ELEMENTS,
    example_4_8_root,
    example_4_12,
    figure_1_root,
)


class TestFigure1:
    """The Brouwerian algebra of J[K(A, L[M(B, C)])]."""

    def test_eleven_elements_with_paper_names(self):
        root = figure_1_root()
        shown = {unparse_abbreviated(e, root) for e in subattributes(root)}
        assert shown == set(FIGURE_1_ELEMENTS)
        assert count_subattributes(root) == 11

    def test_is_a_brouwerian_algebra(self):
        # Theorem 3.9 checked exhaustively on Figure 1's lattice: the
        # pseudo-difference satisfies the defining adjunction.
        root = figure_1_root()
        elements = list(subattributes(root))
        for a in elements:
            for b in elements:
                difference = pseudo_difference(root, a, b)
                for c in elements:
                    assert is_subattribute(difference, c) == is_subattribute(
                        a, join(root, b, c)
                    )

    def test_distributivity(self):
        root = figure_1_root()
        elements = list(subattributes(root))
        for a in elements:
            for b in elements:
                for c in elements:
                    assert meet(root, a, join(root, b, c)) == join(
                        root, meet(root, a, b), meet(root, a, c)
                    )

    def test_not_boolean(self):
        # The lattice contains an element with Y ⊓ Y^C ≠ λ.
        root = figure_1_root()
        from repro.attributes import bottom

        assert any(
            meet(root, y, complement(root, y)) != bottom(root)
            for y in subattributes(root)
        )

    def test_hasse_levels(self):
        from repro.viz import ascii_levels, hasse_graph

        text = ascii_levels(hasse_graph(figure_1_root()))
        lines = text.splitlines()
        assert len(lines) == 6  # λ up to the root: six levels
        assert lines[0].endswith("λ")
        assert lines[-1].endswith("J[K(A, L[M(B, C)])]")


class TestExample48:
    """SubB / MaxB / non-MaxB of A(B, C[D(E, F[G])])."""

    def test_basis_exactly_as_printed(self):
        root = example_4_8_root()
        shown = {unparse_abbreviated(b, root) for b in basis(root)}
        assert shown == set(EXAMPLE_4_8_BASIS)

    def test_maximal_and_non_maximal_split(self):
        root = example_4_8_root()
        assert {
            unparse_abbreviated(b, root) for b in maximal_basis(root)
        } == set(EXAMPLE_4_8_MAXIMAL)
        assert {
            unparse_abbreviated(b, root) for b in non_maximal_basis(root)
        } == set(EXAMPLE_4_8_NON_MAXIMAL)


class TestFigure2AndExample412:
    """Possession in K[L(M[N(A, B)], C)]."""

    def test_possession_claims(self):
        root, x, possessed, not_possessed = example_4_12()
        assert is_possessed_by(root, possessed, x)
        assert not is_possessed_by(root, not_possessed, x)

    def test_x_is_join_of_maximal_attributes(self):
        root, x, _, _ = example_4_12()
        enc = BasisEncoding(root)
        mask = enc.encode(x)
        assert enc.double_complement(mask) == mask

    def test_basis_of_figure_2(self):
        root, _, _, _ = example_4_12()
        shown = {unparse_abbreviated(b, root) for b in basis(root)}
        assert shown == {
            "K[λ]",
            "K[L(M[λ])]",
            "K[L(M[N(A)])]",
            "K[L(M[N(B)])]",
            "K[L(C)]",
        }

    def test_not_possessed_is_shared_with_complement(self):
        # K[λ] is also a basis attribute of X^C — the §4.2 criterion.
        root, x, _, not_possessed = example_4_12()
        assert is_subattribute(not_possessed, complement(root, x))
