"""Integration: end-to-end flows through the public Schema facade."""

import pytest

from repro import Schema
from repro.dependencies import DependencySet
from repro.exceptions import InvalidValueError


@pytest.fixture()
def schema():
    return Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")


@pytest.fixture()
def sigma(schema):
    return schema.dependencies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")


class TestReasoningFlow:
    def test_implies(self, schema, sigma):
        assert schema.implies(sigma, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        assert not schema.implies(
            sigma, "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"
        )

    def test_sigma_as_plain_strings(self, schema):
        assert schema.implies(
            ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
        )

    def test_closure_and_basis(self, schema, sigma):
        closure = schema.closure(sigma, "Pubcrawl(Person)")
        assert schema.show(closure) == "Pubcrawl(Person, Visit[λ])"
        basis = schema.dependency_basis(sigma, "Pubcrawl(Person)")
        shown = {schema.show(member) for member in basis}
        assert "Pubcrawl(Visit[Drink(Beer)])" in shown
        assert "Pubcrawl(Visit[Drink(Pub)])" in shown

    def test_trace(self, schema, sigma):
        trace = schema.trace(sigma, "Pubcrawl(Person)")
        assert "Initialisation:" in trace.render()

    def test_equivalent_and_minimal_cover(self, schema):
        first = schema.dependencies(
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
        )
        second = schema.dependencies(
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])"
        )
        assert schema.equivalent(first, second)
        merged = first.union(second)
        assert len(schema.minimal_cover(merged)) == 1

    def test_foreign_sigma_rejected(self, schema):
        other = Schema("R(A, B)")
        foreign = other.dependencies("R(A) -> R(B)")
        with pytest.raises(ValueError):
            schema.implies(foreign, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")


class TestSemanticsFlow:
    def test_instance_validation(self, schema):
        instance = schema.instance([("Sven", (("Lübzer", "Deanos"),))])
        assert len(instance) == 1
        with pytest.raises(InvalidValueError):
            schema.instance([("Sven", "not-a-list")])

    def test_satisfies(self, schema, pubcrawl_scenario):
        assert schema.satisfies(
            pubcrawl_scenario.instance,
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",
        )
        assert schema.satisfies_all(
            pubcrawl_scenario.instance,
            ["Pubcrawl(Person) -> Pubcrawl(Visit[λ])"],
        )

    def test_witness(self, schema, sigma):
        witness = schema.witness(sigma, "Pubcrawl(Person)")
        assert schema.satisfies_all(witness.instance, sigma)
        assert witness.violates(
            schema.dependency("Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])")
        )


class TestDesignFlow:
    def test_keys(self, schema, sigma):
        assert schema.is_superkey(sigma, "Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        assert not schema.is_superkey(sigma, "Pubcrawl(Person)")
        keys = schema.candidate_keys(sigma)
        assert keys == (schema.root,)

    def test_4nf_and_decompose(self, schema, sigma):
        assert not schema.is_in_4nf(sigma)
        decomposition = schema.decompose(sigma)
        shown = {schema.show(component) for component in decomposition.components}
        assert shown == {
            "Pubcrawl(Person, Visit[Drink(Beer)])",
            "Pubcrawl(Person, Visit[Drink(Pub)])",
        }

    def test_repr(self, schema):
        assert "|N|=4" in repr(schema)

    def test_attribute_passthrough(self, schema):
        element = schema.attribute("Pubcrawl(Person)")
        assert schema.attribute(element) is element

    def test_dependency_set_passthrough(self, schema, sigma):
        assert schema._sigma(sigma) is sigma
        rebuilt = schema._sigma(list(sigma))
        assert isinstance(rebuilt, DependencySet)
