"""Integration: Lemma 6.1 — the algorithm's outputs are *derivable*.

Lemma 6.1 states the soundness half of the correctness proof directly:
``X ↠ W ∈ Σ⁺`` for every ``W ∈ DepB_alg(X)``, and ``X → X⁺_alg ∈ Σ⁺``.
The cross-validation suite checks this *semantically*; here the claim is
checked in its original syntactic form — each output is reproduced by an
actual derivation in the Theorem 4.6 rule system (with the proof
available via ``explain``).
"""

import pytest

from repro.attributes import BasisEncoding, parse_attribute as p, parse_subattribute
from repro.core import compute_closure
from repro.dependencies import FD, MVD, DependencySet
from repro.inference import derive_closure, explain


CASES = [
    ("R(A, B, C)", ["R(A) -> R(B)", "R(B) ->> R(C)"], "R(A)"),
    ("R(A, L[B])", ["R(A) ->> R(L[λ])"], "R(A)"),
    ("R(A, L[D(B, C)])", ["R(A) ->> R(L[D(B)])"], "R(A)"),
]


@pytest.mark.parametrize("root_text,sigma_texts,x_text", CASES)
def test_every_output_is_derivable(root_text, sigma_texts, x_text):
    root = p(root_text)
    encoding = BasisEncoding(root)
    sigma = DependencySet.parse(root, sigma_texts)
    x = parse_subattribute(x_text, root)
    result = compute_closure(encoding, x, sigma)

    # X → X⁺_alg ∈ Σ⁺ (derivable).
    closure_fd = FD(x, result.closure)
    derivation = derive_closure(sigma, target=closure_fd)
    assert closure_fd in derivation
    assert explain(derivation, closure_fd)  # a printable proof exists

    # X ↠ W ∈ Σ⁺ for every dependency-basis member W.
    for member in result.dependency_basis():
        mvd = MVD(x, member)
        derivation = derive_closure(sigma, target=mvd)
        assert mvd in derivation, mvd.display(root)


def test_proof_for_a_mixed_meet_output_names_the_rule():
    # On the list schema the closure gains the length through the mixed
    # meet rule; the derivation the engine finds must actually use it
    # (no other rule produces a non-trivial FD from a bare MVD here).
    root = p("R(A, L[D(B, C)])")
    sigma = DependencySet.parse(root, ["R(A) ->> R(L[D(B)])"])
    x = parse_subattribute("R(A)", root)
    encoding = BasisEncoding(root)
    result = compute_closure(encoding, x, sigma)
    closure_fd = FD(x, result.closure)
    derivation = derive_closure(sigma, target=closure_fd)
    proof = explain(derivation, closure_fd)
    assert "mixed meet" in proof
