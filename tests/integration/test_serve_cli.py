"""End-to-end: the ``repro serve`` process driven by ``repro query``.

Spawns the real server as a subprocess (the deployment artifact), talks
to it over TCP with the sync client *and* the query CLI, then checks
that SIGTERM drains and exits cleanly.  The smoke-test shape CI runs
with a hard timeout.
"""

import contextlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.serve import Client, ServerError

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
IMPLIED_FD = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
NOT_IMPLIED = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"


@contextlib.contextmanager
def spawned(*extra_args):
    """``repro serve`` as a subprocess; yields ``(proc, host, port)``."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        line = proc.stdout.readline()
        assert line.startswith("serving on "), (line, proc.stderr.read()
                                                if proc.poll() else "")
        host, _, port = line.strip().rpartition(" ")[2].rpartition(":")
        yield proc, host, int(port)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


@pytest.fixture()
def served():
    with spawned() as handle:
        yield handle


def query(capsys, host, port, *argv):
    code = main(["query", "--connect", f"{host}:{port}", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestServeProcess:
    def test_scripted_session_and_graceful_sigterm(self, served, capsys,
                                                   tmp_path):
        proc, host, port = served

        sigma_file = tmp_path / "sigma.txt"
        sigma_file.write_text(f"# example\n{MVD}\n", encoding="utf-8")
        code, out, _ = query(
            capsys, host, port, "--session", "pub", "--schema", SCHEMA,
            "--sigma-file", str(sigma_file), "open")
        assert code == 0, out

        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "implies", IMPLIED_FD)
        assert (code, out.strip()) == (0, "implied")

        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "implies", NOT_IMPLIED)
        assert (code, out.strip()) == (1, "not implied")

        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "add", NOT_IMPLIED)
        assert code == 0
        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "retract", NOT_IMPLIED)
        assert code == 0

        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "implies_batch", IMPLIED_FD, NOT_IMPLIED)
        assert code == 1  # not all implied
        assert "not implied" in out

        code, out, _ = query(capsys, host, port, "metrics")
        assert code == 0 and '"sessions"' in out

        code, out, _ = query(capsys, host, port, "--session", "pub", "close")
        assert code == 0

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0

    def test_analysis_ops_over_the_wire(self, served, capsys):
        """The registry-derived ops (cover/keys/check4nf/is_redundant)
        answer through ``repro query --connect`` with the same rendering
        and exit codes as local mode."""
        proc, host, port = served
        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "--schema", SCHEMA, "open")
        assert code == 0
        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "add", MVD)
        assert code == 0

        code, out, _ = query(capsys, host, port, "--session", "pub", "cover")
        assert code == 0 and "->>" in out

        code, out, _ = query(capsys, host, port, "--session", "pub", "keys")
        assert code == 0 and "Pubcrawl(" in out

        # Person is not a superkey, so its MVD violates 4NF
        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "check4nf")
        assert code == 1
        assert out.splitlines()[0] == "NOT in 4NF"
        assert "violated by:" in out

        # sole Σ member: not redundant (exit 1)
        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "is_redundant", MVD)
        assert (code, out.strip()) == (1, "not redundant")

        # an implied FD added on top of the MVD *is* redundant (exit 0)
        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "add", IMPLIED_FD)
        assert code == 0
        code, out, _ = query(capsys, host, port, "--session", "pub",
                             "is_redundant", IMPLIED_FD)
        assert (code, out.strip()) == (0, "redundant")

        # arity errors are caught client-side, before any wire traffic
        code, _, err = query(capsys, host, port, "--session", "pub",
                             "is_redundant")
        assert code == 2 and "exactly one argument" in err
        code, _, err = query(capsys, host, port, "--session", "pub",
                             "keys", "spurious")
        assert code == 2 and "exactly 0 arguments" in err

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0

    def test_query_verb_list_comes_from_the_registry(self, capsys):
        """``repro query`` rejects unknown verbs with the registry's wire
        set in the usage message."""
        from repro.core.commands import wire_commands

        with pytest.raises(SystemExit) as caught:
            main(["query", "--connect", "127.0.0.1:1", "no_such_op"])
        assert caught.value.code == 2
        err = capsys.readouterr().err
        for cls in wire_commands():
            assert f"'{cls.spec.name}'" in err

    def test_inflight_request_survives_sigterm(self, served):
        """SIGTERM while a request is mid-flight: the response is still
        delivered (drain), then the process exits 0."""
        proc, host, port = served
        with Client.connect(host, port) as client:
            client.open("pub", SCHEMA, [MVD])
            # the request below races SIGTERM; admitted work must finish
            proc.send_signal(signal.SIGTERM)
            try:
                assert client.implies("pub", IMPLIED_FD) is True
            except ServerError as error:
                # the race may legitimately refuse the request, but only
                # with the typed shutdown code
                assert error.code == "shutting_down"
            except ConnectionError:
                pass  # drain finished before the request line was read
        assert proc.wait(timeout=15) == 0

    def test_health_and_retries_against_a_faulted_server(self, capsys):
        """A served process armed with ``--fault-plan``: ``query health``
        always answers, a plain query hits the injected fault, and
        ``--retries`` heals it."""
        plan = json.dumps({"seed": 1, "rules": [
            {"op": "ping", "kind": "error", "code": "overloaded",
             "every": 1, "times": 2}]})
        with spawned("--fault-plan", plan) as (proc, host, port):
            code, out, _ = query(capsys, host, port, "health")
            health = json.loads(out)
            assert code == 0
            assert health["status"] == "ok"
            assert health["faults"] == {"injected": 0}

            # without retries the injected overload surfaces (exit 2)
            code, _, err = query(capsys, host, port, "ping")
            assert code == 2 and "overloaded" in err

            # with retries the second injected fault is absorbed
            code, out, _ = query(capsys, host, port, "--retries", "5", "ping")
            assert code == 0 and '"pong": true' in out

            code, out, _ = query(capsys, host, port, "health")
            assert json.loads(out)["faults"] == {"injected": 2, "error": 2}

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0

    def test_bad_fault_plan_is_a_clean_cli_error(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--fault-plan", '{"seed": 1, "rules": []}'],
            env=env, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 2
        assert "at least one rule" in proc.stderr

    def test_connection_refused_is_a_clean_cli_error(self, served, capsys):
        proc, host, port = served
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            code, _, err = query(capsys, host, port, "ping")
            if code == 2:
                assert "error" in err
                return
            time.sleep(0.1)
        pytest.fail("stopped server kept answering")


def repro_cli(*argv):
    """``python -m repro ...`` as a subprocess (the shipped artifact)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p)
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          env=env, capture_output=True, text=True,
                          timeout=60)


class TestStoreInspectCLI:
    """``repro store inspect`` diagnoses missing/uninitialized stores
    (exit 1) instead of stack traces or misleading JSON; real
    corruption stays a hard error (exit 2)."""

    def test_missing_path_is_diagnosed(self, tmp_path):
        proc = repro_cli("store", "inspect", str(tmp_path / "nope"))
        assert proc.returncode == 1
        assert "no manifest" in proc.stderr
        assert "not a directory" in proc.stderr
        assert proc.stdout == ""

    def test_empty_directory_is_diagnosed(self, tmp_path):
        proc = repro_cli("store", "inspect", str(tmp_path))
        assert proc.returncode == 1
        assert "no manifest" in proc.stderr
        assert "uninitialized" in proc.stderr
        assert proc.stdout == ""

    def test_initialized_store_prints_json(self, tmp_path):
        data_dir = str(tmp_path / "store")
        with spawned("--data-dir", data_dir) as (proc, host, port):
            with Client.connect(host, port) as client:
                client.open("pub", SCHEMA, [MVD])
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        proc = repro_cli("store", "inspect", data_dir)
        assert proc.returncode == 0, proc.stderr
        info = json.loads(proc.stdout)
        assert info["initialized"] and info["last_seq"] == 1

    def test_corruption_is_still_a_hard_error(self, tmp_path):
        data_dir = str(tmp_path / "store")
        with spawned("--data-dir", data_dir) as (proc, host, port):
            with Client.connect(host, port) as client:
                client.open("pub", SCHEMA, [MVD])
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        # a mangled manifest is corruption, not "no manifest"
        with open(os.path.join(data_dir, "manifest.json"), "w") as handle:
            handle.write("{not json")
        proc = repro_cli("store", "inspect", data_dir)
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")


class TestReplicationCLI:
    """The two-terminal story from docs/REPLICATION.md, end to end:
    ``serve --replicate-from`` + ``query --replicas``."""

    def test_replicated_pair_over_the_cli(self, tmp_path, capsys):
        with spawned("--data-dir", str(tmp_path / "p")) as (pp, host, port):
            with spawned("--data-dir", str(tmp_path / "f"),
                         "--replicate-from", f"{host}:{port}",
                         "--replica-id", "cli-f1") as (fp, f_host, f_port):
                code, _, _ = query(capsys, host, port, "--session", "pub",
                                   "--schema", SCHEMA, "-d", MVD, "open")
                assert code == 0
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    with Client.connect(f_host, f_port) as down:
                        replica = down.replicate_status().get("replica", {})
                    if replica.get("applied_seq", 0) >= 1:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("follower never caught up")

                # a routed read answers from the fleet
                code, out, _ = query(capsys, host, port,
                                     "--replicas", f"{f_host}:{f_port}",
                                     "--session", "pub",
                                     "implies", IMPLIED_FD)
                assert (code, out.strip()) == (0, "implied")

                # replicate.status renders as JSON on both roles
                code, out, _ = query(capsys, host, port, "replicate.status")
                assert code == 0
                status = json.loads(out)
                assert status["role"] == "primary"
                assert "cli-f1" in status["followers"]
                code, out, _ = query(capsys, f_host, f_port,
                                     "replicate.status")
                assert code == 0
                assert json.loads(out)["role"] == "replica"

    def test_bad_replicas_flag_is_a_clean_cli_error(self, capsys):
        code = main(["query", "--connect", "127.0.0.1:1",
                     "--replicas", "nonsense", "ping"])
        assert code == 2
        assert "--replicas" in capsys.readouterr().err
