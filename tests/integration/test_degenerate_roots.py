"""Integration: degenerate roots through the whole pipeline.

``λ`` itself, a single flat attribute, and a bare list are all legal
nested attributes; every layer — algebra, algorithm, witness,
normalisation, facade — must handle them without special-casing by the
caller.
"""

import pytest

from repro import Schema
from repro.values import OK


class TestNullRoot:
    @pytest.fixture()
    def schema(self):
        return Schema("λ")

    def test_empty_basis(self, schema):
        assert schema.encoding.size == 0
        assert schema.encoding.full == 0

    def test_closure_and_membership(self, schema):
        sigma = schema.dependencies()
        assert schema.show(schema.closure(sigma, "λ")) == "λ"
        assert schema.implies(sigma, "λ -> λ")
        assert schema.implies(sigma, "λ ->> λ")
        assert schema.dependency_basis(sigma, "λ") == ()

    def test_witness_is_the_ok_singleton(self, schema):
        witness = schema.witness(schema.dependencies(), "λ")
        assert witness.instance == frozenset({OK})

    def test_design_queries(self, schema):
        sigma = schema.dependencies()
        assert schema.is_in_4nf(sigma)
        assert [schema.show(c) for c in schema.decompose(sigma).components] == ["λ"]
        # λ is (vacuously) a key of itself.
        assert schema.is_superkey(sigma, "λ")

    def test_satisfaction(self, schema):
        instance = schema.instance([OK])
        assert schema.satisfies(instance, "λ -> λ")


class TestFlatRoot:
    @pytest.fixture()
    def schema(self):
        return Schema("A")

    def test_closure_under_constant_fd(self, schema):
        sigma = schema.dependencies("λ -> A")
        assert schema.show(schema.closure(sigma, "λ")) == "A"
        assert schema.is_superkey(sigma, "λ")
        assert schema.candidate_keys(sigma) == (schema.attribute("λ"),)

    def test_witness_for_constant_fd(self, schema):
        sigma = schema.dependencies("λ -> A")
        witness = schema.witness(sigma, "λ")
        # λ → A forces a single tuple: every value agrees on λ, hence on A.
        assert len(witness.instance) == 1

    def test_without_dependencies(self, schema):
        sigma = schema.dependencies()
        witness = schema.witness(sigma, "λ")
        assert len(witness.instance) == 2  # two distinct constants
        assert not schema.implies(sigma, "λ -> A")


class TestBareListRoot:
    @pytest.fixture()
    def schema(self):
        return Schema("L[A]")

    def test_trivial_mvd_implies_nothing_new(self, schema):
        # L[λ] ↠ L[A] is trivial (the join is the root): no consequences.
        sigma = schema.dependencies("L[λ] ->> L[A]")
        assert not schema.implies(sigma, "L[λ] -> L[A]")
        assert schema.implies(sigma, "L[λ] ->> L[A]")  # trivially

    def test_length_determines_content_fd(self, schema):
        sigma = schema.dependencies("L[λ] -> L[A]")
        assert schema.is_superkey(sigma, "L[λ]")
        witness = schema.witness(sigma, "L[λ]")
        assert len(witness.instance) == 1

    def test_empty_list_value_everywhere(self, schema):
        instance = schema.instance([(), (1,), (1, 2)])
        assert schema.satisfies(instance, "L[A] -> L[λ]")  # trivial
        assert not schema.satisfies(instance, "λ -> L[λ]")  # lengths differ

    def test_erratum_instance_through_facade(self, schema):
        # {[], [3]}: lossless yet MVD-violating (E11), via the facade.
        instance = schema.instance([(), (3,)])
        assert not schema.satisfies(instance, "λ ->> L[λ]")
