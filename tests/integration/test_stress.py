"""Stress and robustness tests: large schemas, deep nesting, long inputs.

Nothing paper-specific here — these pin the practical envelope a
downstream user can rely on: deeply nested list chains, wide records
(whose ``Sub(N)`` is astronomically large but whose *basis* stays
linear), long textual inputs, and the algorithm on three-digit basis
sizes.
"""

import pytest

from repro.attributes import (
    BasisEncoding,
    basis_size,
    count_subattributes,
    parse_attribute,
    unparse,
)
from repro.core import compute_closure
from repro.dependencies import DependencySet
from repro.workloads import deep_list_chain, flat_record, mixed_family, record_of_lists


class TestDeepNesting:
    def test_deep_list_chain_attribute_operations(self):
        root = deep_list_chain(200)
        assert basis_size(root) == 201
        assert root.depth() == 200
        # Parse/print roundtrip on the ~1.5 kB textual form.
        assert parse_attribute(unparse(root)) == root

    def test_deep_chain_encoding_and_closure(self):
        root = deep_list_chain(120)
        encoding = BasisEncoding(root)
        assert encoding.size == 121
        # λ ↠ (chain cut at level 60): forces every length above the cut
        # into the closure via the mixed meet rule.
        half = encoding.decode(encoding.below[60])
        sigma = DependencySet.parse(root, [f"λ ->> {unparse(half)}"])
        result = compute_closure(encoding, 0, sigma)
        # Y ⊓ Y^C = Y here (a pure prefix of lengths): the closure gains Y.
        assert result.implies_fd_rhs(encoding.below[60])

    def test_projection_on_deep_values(self):
        from repro.values import project

        root = deep_list_chain(60)
        value = 7
        for _ in range(60):
            value = (value,)
        projected = project(root, root, value)
        assert projected == value


class TestWideRecords:
    def test_sub_count_is_astronomical_but_basis_linear(self):
        root = flat_record(120)
        assert basis_size(root) == 120
        assert count_subattributes(root) == 2 ** 120  # counting only!

    def test_encoding_on_wide_record(self):
        root = flat_record(200)
        encoding = BasisEncoding(root)
        assert encoding.size == 200
        assert encoding.maximal == encoding.full  # all flats maximal
        # Boolean special case: complement is set complement.
        some = encoding.down_close(0b1011)
        assert encoding.complement(some) == encoding.full & ~some

    def test_closure_on_wide_mixed_schema(self):
        root = mixed_family(30)  # |N| = 120
        encoding = BasisEncoding(root)
        sigma = DependencySet.parse(
            root,
            [
                "R(A1) -> R(L1[D1(B1, C1)])",
                "R(A2) ->> R(L2[D2(B2)])",
                "R(A3) -> R(A4)",
            ],
        )
        result = compute_closure(
            encoding, encoding.encode(parse_attribute_x(root)), sigma
        )
        assert result.passes <= encoding.size


def parse_attribute_x(root):
    from repro.attributes import parse_subattribute

    return parse_subattribute("R(A1, A2, A3)", root)


class TestLongTextualInputs:
    def test_long_dependency_text(self):
        root = record_of_lists(50)
        text = unparse(root)
        assert len(text) > 400
        sigma = DependencySet.parse(root, [f"{text} -> {text}"])
        assert len(sigma) == 1

    def test_example_5_1_text_roundtrip_stability(self, example51):
        # Idempotent display: print → parse → print is a fixpoint.
        from repro.attributes import parse_subattribute, unparse_abbreviated

        root = example51.root
        for text in example51.dependency_basis_texts:
            element = parse_subattribute(text, root)
            shown = unparse_abbreviated(element, root)
            assert parse_subattribute(shown, root) == element
            assert unparse_abbreviated(parse_subattribute(shown, root), root) == shown


class TestAlgorithmScale:
    @pytest.mark.slow
    def test_three_digit_basis_size(self):
        root = mixed_family(64)  # |N| = 256
        encoding = BasisEncoding(root)
        sigma = DependencySet.parse(
            root,
            [f"R(A{i}) ->> R(L{i}[D{i}(B{i})])" for i in range(1, 17)],
        )
        result = compute_closure(encoding, encoding.below[0], sigma)
        assert result.passes <= encoding.size
        assert result.blocks
