"""Integration: every example script runs clean and says what it should.

Examples are the library's front door; this module executes each one
in-process (``runpy``) and asserts the load-bearing lines of its output,
so documentation drift fails the build rather than the reader.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "holds  Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])" in out
        assert "FAILS  Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])" in out
        assert "implied       Pubcrawl(Person) -> Pubcrawl(Visit[λ])" in out
        assert "Pubcrawl(Person, Visit[Drink(Beer)])" in out  # decomposition

    def test_genome_annotation(self):
        out = run_example("genome_annotation.py")
        assert "yes  Gene(Acc) -> Gene(Expr[λ])" in out
        assert "mixed meet" in out  # the printed proof tree
        assert "annotation fact table satisfies Σ? True" in out

    def test_schema_design(self):
        out = run_example("schema_design.py")
        assert "equivalent? True" in out
        assert "minimal cover: 2 dependencies" in out
        assert "re-joined equals the original? True" in out

    def test_algorithm_trace(self):
        out = run_example("algorithm_trace.py")
        assert "Pass 1 through the REPEAT UNTIL loop:" in out
        assert "implied       L1(L7(F, L8[L9(L10[H])])) ->> L1(L5[L6(D)])" in out

    def test_json_documents(self):
        out = run_example("json_documents.py")
        assert "documents satisfy Σ? True" in out
        assert "replayed verdict identical: True" in out

    def test_data_repair(self):
        out = run_example("data_repair.py")
        assert "6 forced occurrences" in out
        assert "repaired instance equals the original snapshot? True" in out
        assert "chase refused" in out

    def test_xml_catalog(self):
        out = run_example("xml_catalog.py")
        assert "ingested 3 page documents" in out
        assert "feed satisfies the constraints? True" in out
        assert "XML round-trip verified" in out
