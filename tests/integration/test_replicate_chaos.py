"""Replication chaos: SIGKILL the primary mid-workload, keep reading.

The scenario the whole subsystem exists for: a primary armed with a
seeded ``crash`` fault (the same SIGKILL-grade death the store
recovery matrix uses) dies mid-mutation while a follower tails it.
Throughout — before, during and after the death — the follower serves
read-only commands.  The follower is then killed uncleanly itself and
*promoted*: restarted on its own data directory without
``--replicate-from``.  The promoted node must answer byte-identically
to a fault-free replay of exactly the mutations the dead primary
acknowledged, and must accept writes again.

Set ``REPRO_REPLICATE_TEST_DIR`` to park both data directories where a
CI job can upload them as failure artifacts.
"""

import contextlib
import json
import os
import time

import pytest

from repro.serve import Client, ServerError
from repro.store import inspect_store
from repro.store.wal import CRASH_EXIT_STATUS

from .test_store_recovery import (
    ADDS,
    SCHEMA,
    baseline,
    fingerprint,
    spawned,
)

IMPLIED = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"


@pytest.fixture()
def data_dirs(tmp_path, request):
    """(primary_dir, follower_dir), parked for CI artifact upload when
    ``REPRO_REPLICATE_TEST_DIR`` is set."""
    base = os.environ.get("REPRO_REPLICATE_TEST_DIR")
    if base:
        safe = request.node.name.replace("[", "-").replace("]", "")
        root = os.path.join(base, safe)
    else:
        root = str(tmp_path)
    primary = os.path.join(root, "primary")
    follower = os.path.join(root, "follower")
    os.makedirs(primary, exist_ok=True)
    os.makedirs(follower, exist_ok=True)
    return primary, follower


def applied_seq(client):
    status = client.replicate_status()
    return status.get("replica", {}).get("applied_seq", 0)


def await_catchup(host, port, seq, budget=15.0):
    """Poll the follower's ``replicate.status`` until it reaches ``seq``."""
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        with Client.connect(host, port) as client:
            position = applied_seq(client)
            if position >= seq:
                return position
        time.sleep(0.05)
    raise AssertionError(f"follower never reached seq {seq}")


def test_follower_serves_reads_through_primary_death_and_promotes(
        data_dirs):
    primary_dir, follower_dir = data_dirs
    # the same third-add append crash the store recovery matrix uses:
    # open + two adds are acknowledged, the third dies pre-append
    plan = json.dumps({"seed": 7, "rules": [
        {"op": "store.append", "kind": "crash", "when": "pre",
         "every": 1, "times": 1, "after": 3}]})

    acked = []
    with spawned("--data-dir", primary_dir, "--fsync", "always",
                 "--fault-plan", plan) as (primary, host, port):
        with spawned("--data-dir", follower_dir,
                     "--replicate-from", f"{host}:{port}",
                     "--replica-id", "chaos-f1") as (follower,
                                                     f_host, f_port):
            with contextlib.suppress(ConnectionError):
                with Client.connect(host, port) as up:
                    up.open("pub", SCHEMA)
                    for dep in ADDS[:2]:
                        up.add("pub", dep)
                        acked.append(dep)
                    # the follower must hold every acknowledged record
                    # *before* the killing mutation: once the primary
                    # is dead there is nowhere left to fetch them from
                    await_catchup(f_host, f_port, seq=3)
                    # reads are served by the follower while the
                    # primary is still alive...
                    with Client.connect(f_host, f_port) as down:
                        assert down.implies("pub", IMPLIED) is True
                    up.add("pub", ADDS[2])  # boom: dies mid-append
                    acked.append(ADDS[2])   # (never reached)
            assert primary.wait(timeout=15) == CRASH_EXIT_STATUS
            assert tuple(acked) == ADDS[:2], "crash landed off-target"

            # ...and all through the primary's death: the follower
            # keeps answering read-only commands from local state
            with Client.connect(f_host, f_port) as down:
                surviving = fingerprint(down)
                assert down.implies("pub", IMPLIED) is True
                # it is still a replica: mutations stay refused
                with pytest.raises(ServerError) as info:
                    down.add("pub", IMPLIED)
                assert info.value.code == "not_primary"
                assert applied_seq(down) == 3

            # kill the follower as uncleanly as the primary died
            follower.kill()
        assert inspect_store(follower_dir)["initialized"]

    # promotion = restart the follower's directory as a plain primary
    with spawned("--data-dir", follower_dir) as (promoted, host, port):
        with Client.connect(host, port) as client:
            promoted_print = fingerprint(client)
            status = client.replicate_status()
            assert status["role"] == "primary"
            assert status["last_seq"] == 3
            # a promoted node takes writes again, at the next seq
            result = client.add("pub", IMPLIED)
            assert result["seq"] == 4

    # the promoted follower's answers are byte-identical to a
    # fault-free replay of exactly the acknowledged mutations — and so
    # were the reads it served while the primary was dead
    expected = baseline(ADDS[:2])
    assert promoted_print == expected
    assert surviving == expected


def test_replicated_pair_survives_a_follower_sigkill(data_dirs):
    """The mirror image: the *follower* dies uncleanly and, restarted
    as a follower again, resumes its tail from its own WAL position."""
    primary_dir, follower_dir = data_dirs
    with spawned("--data-dir", primary_dir) as (primary, host, port):
        with spawned("--data-dir", follower_dir,
                     "--replicate-from", f"{host}:{port}",
                     "--replica-id", "chaos-f2") as (follower,
                                                     f_host, f_port):
            with Client.connect(host, port) as up:
                up.open("pub", SCHEMA)
                up.add("pub", ADDS[0])
            await_catchup(f_host, f_port, seq=2)
            follower.kill()

        # mutations keep landing while the follower is down
        with Client.connect(host, port) as up:
            up.add("pub", ADDS[1])

        with spawned("--data-dir", follower_dir,
                     "--replicate-from", f"{host}:{port}",
                     "--replica-id", "chaos-f2") as (follower,
                                                     f_host, f_port):
            await_catchup(f_host, f_port, seq=3)
            with Client.connect(f_host, f_port) as down:
                assert fingerprint(down) == baseline(ADDS[:2])
