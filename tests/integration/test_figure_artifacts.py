"""Integration: the committed docs/figures artifacts are current.

`docs/figures/` ships pre-rendered reproductions of the paper's figures;
this test regenerates each and compares, so the committed artifacts can
never drift from the code that claims to produce them.
"""

from pathlib import Path

import pytest

from repro.attributes import BasisEncoding
from repro.core import TraceRecorder, compute_closure
from repro.viz import figure_1, figure_2, figures_3_and_4, render_trace_states
from repro.workloads import example_5_1

FIGURES_DIR = Path(__file__).resolve().parents[2] / "docs" / "figures"


def _expected():
    fixture = example_5_1()
    encoding = BasisEncoding(fixture.root)
    recorder = TraceRecorder()
    compute_closure(encoding, fixture.x(), fixture.sigma, trace=recorder)
    return {
        "figure1_sub_lattice.dot": figure_1(fmt="dot"),
        "figure1_sub_lattice.txt": figure_1(),
        "figure2_basis_poset.dot": figure_2(fmt="dot"),
        "figure2_basis_poset.txt": figure_2(),
        "figures3_4_example51_trace.txt": figures_3_and_4(),
        "figures3_4_state_diagrams.txt": render_trace_states(recorder),
    }


@pytest.mark.parametrize("name", sorted(_expected()))
def test_artifact_is_current(name):
    expected = _expected()[name]
    committed = (FIGURES_DIR / name).read_text(encoding="utf-8")
    if name.endswith(".dot"):
        # DOT node ids are object ids — compare structure, not ids.
        def normalise(text):
            import re

            return re.sub(r'"\d+"', '"#"', text)

        assert normalise(committed.strip()) == normalise(expected.strip())
    else:
        assert committed.strip() == expected.strip()
