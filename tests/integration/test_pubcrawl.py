"""Integration: Example 4.2 / 4.5 — the Pubcrawl running example (E4).

Covers the stated satisfaction verdicts, the lossless decomposition with
the exact projected relations printed in Example 4.5, and the syntactic
side (what the membership algorithm infers from the example's MVD).
"""

import pytest

from repro.attributes import parse_subattribute
from repro.core import implies
from repro.dependencies import parse_dependency, satisfies
from repro.normalization import decompose_4nf
from repro.values import OK, generalised_join, project_instance


def s(text, root):
    return parse_subattribute(text, root)


class TestStatedVerdicts:
    def test_fd_to_pubs_fails(self, pubcrawl_scenario):
        dep = parse_dependency(
            pubcrawl_scenario.failing_fd_texts[0], pubcrawl_scenario.root
        )
        assert not satisfies(pubcrawl_scenario.root, pubcrawl_scenario.instance, dep)

    def test_fd_to_beers_fails(self, pubcrawl_scenario):
        dep = parse_dependency(
            pubcrawl_scenario.failing_fd_texts[1], pubcrawl_scenario.root
        )
        assert not satisfies(pubcrawl_scenario.root, pubcrawl_scenario.instance, dep)

    def test_mvd_to_pubs_holds(self, pubcrawl_scenario):
        dep = parse_dependency(
            pubcrawl_scenario.holding_mvd_text, pubcrawl_scenario.root
        )
        assert satisfies(pubcrawl_scenario.root, pubcrawl_scenario.instance, dep)

    def test_person_determines_visit_count(self, pubcrawl_scenario):
        dep = parse_dependency(
            pubcrawl_scenario.holding_fd_text, pubcrawl_scenario.root
        )
        assert satisfies(pubcrawl_scenario.root, pubcrawl_scenario.instance, dep)


class TestExample45Decomposition:
    """The two projections printed in Example 4.5, and their join."""

    @pytest.fixture()
    def projections(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        beers_attr = s("Pubcrawl(Person, Visit[Drink(Beer)])", root)
        pubs_attr = s("Pubcrawl(Person, Visit[Drink(Pub)])", root)
        return (
            (beers_attr, project_instance(root, beers_attr, pubcrawl_scenario.instance)),
            (pubs_attr, project_instance(root, pubs_attr, pubcrawl_scenario.instance)),
        )

    def test_beers_projection_matches_paper(self, projections):
        (_, beers), _ = projections
        names = {
            ("Sven", (("Lübzer", OK), ("Kindl", OK))),
            ("Sven", (("Kindl", OK), ("Lübzer", OK))),
            ("Klaus-Dieter", (("Guiness", OK), ("Speights", OK), ("Guiness", OK))),
            ("Klaus-Dieter", (("Kölsch", OK), ("Bönnsch", OK), ("Guiness", OK))),
            ("Sebastian", ()),
        }
        assert beers == names

    def test_pubs_projection_matches_paper(self, projections):
        _, (_, pubs) = projections
        names = {
            ("Sven", ((OK, "Deanos"), (OK, "Highflyers"))),
            ("Klaus-Dieter", ((OK, "Irish Pub"), (OK, "3Bar"), (OK, "Irish Pub"))),
            ("Klaus-Dieter", ((OK, "Highflyers"), (OK, "Deanos"), (OK, "3Bar"))),
            ("Sebastian", ()),
        }
        assert pubs == names

    def test_join_is_lossless(self, pubcrawl_scenario, projections):
        # Theorem 4.4: r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r).
        (beers_attr, beers), (pubs_attr, pubs) = projections
        joined = generalised_join(
            pubcrawl_scenario.root, beers_attr, pubs_attr, beers, pubs
        )
        assert joined == pubcrawl_scenario.instance

    def test_decompose_4nf_reproduces_example(self, pubcrawl_scenario):
        decomposition = decompose_4nf(pubcrawl_scenario.sigma())
        expected = {
            s(text, pubcrawl_scenario.root)
            for text in pubcrawl_scenario.decomposition_texts
        }
        assert set(decomposition.components) == expected


class TestSyntacticConsequences:
    """What Algorithm 5.1 derives from the example's single MVD."""

    def test_visit_count_fd_is_implied(self, pubcrawl_scenario):
        # The informal claim "the person determines the number of bars" is
        # a *logical consequence* of the MVD via the mixed meet rule.
        sigma = pubcrawl_scenario.sigma()
        target = parse_dependency(
            pubcrawl_scenario.holding_fd_text, pubcrawl_scenario.root
        )
        assert implies(sigma, target)

    def test_beer_mvd_is_implied_by_complementation(self, pubcrawl_scenario):
        sigma = pubcrawl_scenario.sigma()
        target = parse_dependency(
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
            pubcrawl_scenario.root,
        )
        assert implies(sigma, target)

    def test_content_fds_are_not_implied(self, pubcrawl_scenario):
        sigma = pubcrawl_scenario.sigma()
        for text in pubcrawl_scenario.failing_fd_texts:
            target = parse_dependency(text, pubcrawl_scenario.root)
            assert not implies(sigma, target)

    def test_example_instance_consistent_with_theory(self, pubcrawl_scenario):
        # Whatever the algorithm claims implied must hold in the example's
        # own instance (it satisfies Σ).
        from repro.attributes import subattributes
        from repro.dependencies import FD, MVD

        root = pubcrawl_scenario.root
        sigma = pubcrawl_scenario.sigma()
        x = s("Pubcrawl(Person)", root)
        for y in subattributes(root):
            for dep in (FD(x, y), MVD(x, y)):
                if implies(sigma, dep):
                    assert satisfies(root, pubcrawl_scenario.instance, dep), (
                        dep.display(root)
                    )
