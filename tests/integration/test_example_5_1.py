"""Integration: Example 5.1 / Figures 3 and 4, state by state (E5).

Every intermediate state printed in the paper is checked verbatim against
the trace of Algorithm 5.1 — initialisation (Figure 3), the single
effective step of pass 1, both effective steps of pass 2, and the final
closure plus 13-element dependency basis (Figure 4).
"""

import pytest

from repro.core import TraceRecorder, compute_closure


@pytest.fixture(scope="module")
def run(example51, example51_encoding):
    recorder = TraceRecorder()
    result = compute_closure(
        example51_encoding, example51.x(), example51.sigma, trace=recorder
    )
    return example51, example51_encoding, recorder, result


def decode_db(encoding, masks):
    return frozenset(encoding.decode(mask) for mask in masks)


def one(fixture, text):
    return next(iter(fixture.resolve((text,))))


class TestInitialisation:
    """Figure 3: X_new = X; DB_new = MaxB(X^CC) ∪ {X^C}."""

    def test_initial_x(self, run):
        fixture, encoding, recorder, _ = run
        assert encoding.decode(recorder.initial_x) == fixture.x()

    def test_initial_db(self, run):
        fixture, encoding, recorder, _ = run
        assert decode_db(encoding, recorder.initial_db) == fixture.resolve(
            fixture.initial_db_texts
        )


class TestPassOne:
    """Pass 1: the FD and U1 change nothing; U3 ↠ V3 fires."""

    def test_fd_step_no_change(self, run):
        fixture, _, recorder, _ = run
        fd = fixture.sigma.fds()[0]
        assert not recorder.state_after(1, fd).changed

    def test_u1_step_no_change(self, run):
        fixture, _, recorder, _ = run
        u1 = fixture.sigma.mvds()[0]
        assert not recorder.state_after(1, u1).changed

    def test_u3_step_updates_x(self, run):
        fixture, encoding, recorder, _ = run
        u3 = fixture.sigma.mvds()[1]
        step = recorder.state_after(1, u3)
        assert step.changed
        assert encoding.decode(step.x_new) == one(fixture, fixture.pass1_x_text)

    def test_u3_step_updates_db(self, run):
        fixture, encoding, recorder, _ = run
        u3 = fixture.sigma.mvds()[1]
        step = recorder.state_after(1, u3)
        assert decode_db(encoding, step.db_new) == fixture.resolve(
            fixture.pass1_db_texts
        )

    def test_u3_vtilde_is_v3(self, run):
        # Ū = λ in pass 1(iii), so Ṽ = V3 itself.
        fixture, encoding, recorder, _ = run
        u3 = fixture.sigma.mvds()[1]
        step = recorder.state_after(1, u3)
        assert encoding.decode(step.v_tilde) == u3.rhs


class TestPassTwo:
    """Pass 2: the FD fires, then U1 ↠ V1 fires, U3 is absorbed."""

    def test_fd_step_state(self, run):
        fixture, encoding, recorder, _ = run
        fd = fixture.sigma.fds()[0]
        step = recorder.state_after(2, fd)
        assert step.changed
        assert encoding.decode(step.x_new) == one(fixture, fixture.pass2_fd_x_text)
        assert decode_db(encoding, step.db_new) == fixture.resolve(
            fixture.pass2_fd_db_texts
        )

    def test_u1_step_state(self, run):
        fixture, encoding, recorder, _ = run
        u1 = fixture.sigma.mvds()[0]
        step = recorder.state_after(2, u1)
        assert step.changed
        # X_new unchanged by this MVD (its overlap is already absorbed).
        assert encoding.decode(step.x_new) == one(fixture, fixture.pass2_fd_x_text)
        assert decode_db(encoding, step.db_new) == fixture.resolve(
            fixture.pass2_mvd_db_texts
        )

    def test_u3_absorbed(self, run):
        fixture, _, recorder, _ = run
        u3 = fixture.sigma.mvds()[1]
        assert not recorder.state_after(2, u3).changed


class TestFinalState:
    """Figure 4 and the closing lines of Example 5.1."""

    def test_pass_three_changes_nothing(self, run):
        _, _, recorder, result = run
        assert result.passes == 3
        assert not any(
            step.changed for step in recorder.steps if step.pass_number == 3
        )

    def test_closure(self, run):
        fixture, _, _, result = run
        assert result.closure == one(fixture, fixture.closure_text)

    def test_dependency_basis_thirteen_elements(self, run):
        fixture, _, _, result = run
        expected = fixture.resolve(fixture.dependency_basis_texts)
        assert len(expected) == 13
        assert set(result.dependency_basis()) == expected

    def test_membership_queries_on_final_state(self, run):
        fixture, encoding, _, result = run
        from repro.attributes import parse_subattribute

        # X ->> L1(L5[L6(D)]) is a dependency-basis element: implied.
        member = parse_subattribute("L1(L5[L6(D)])", fixture.root)
        assert result.implies_mvd_rhs(encoding.encode(member))
        # X -> L1(L2[L3[L4(A)]]) follows from the closure.
        inside = parse_subattribute("L1(L2[L3[L4(A)]])", fixture.root)
        assert result.implies_fd_rhs(encoding.encode(inside))
        # X -> L1(L2[L3[L4(B)]]) does not.
        outside = parse_subattribute("L1(L2[L3[L4(B)]])", fixture.root)
        assert not result.implies_fd_rhs(encoding.encode(outside))
        # Joins of basis members are implied MVDs; partial overlaps not.
        pair = parse_subattribute("L1(L2[L3[L4(A, B)]])", fixture.root)
        assert result.implies_mvd_rhs(encoding.encode(pair))
        partial = parse_subattribute("L1(L2[L3[L4(C)]])", fixture.root)
        assert not result.implies_mvd_rhs(encoding.encode(partial))
