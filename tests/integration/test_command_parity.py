"""Local/served parity: every read-only command, byte-identical JSON.

For each corpus problem and each engine (worklist = compiled plan on,
naive = plan off), every read-only wire command is executed twice —
directly against a local :class:`Session` through
``repro.core.commands.execute``, and over the wire through a live
``ReasoningServer`` — and the raw JSON results must be byte-identical
(``json.dumps(..., sort_keys=True)``).  This is the guarantee that a
served deployment answers exactly what the library answers.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.core import commands
from repro.core.session import Session
from repro.schema import Schema
from repro.serve import AsyncClient, ReasoningServer, ServeConfig

CORPUS = sorted(
    (Path(__file__).resolve().parents[1] / "corpus").glob("*.json"))
ENGINES = ("worklist", "naive")  # compiled plan on / plan off


def load(path: Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def read_only_invocations(case: dict) -> list[tuple[str, dict]]:
    """Every read-only wire op with corpus-derived params (no session)."""
    queries = [q["dependency"] for q in case.get("queries", [])]
    subjects = [c["x"] for c in case.get("closures", [])]
    invocations: list[tuple[str, dict]] = []
    for dependency in queries:
        invocations.append(("implies", {"dependency": dependency}))
    if queries:
        invocations.append(("implies_batch", {"dependencies": queries}))
    for x in subjects:
        invocations.append(("closure", {"x": x}))
        invocations.append(("basis", {"x": x}))
    invocations.append(("cover", {}))
    invocations.append(("keys", {}))
    invocations.append(("check4nf", {}))
    for dependency in case.get("sigma", []):
        invocations.append(("is_redundant", {"dependency": dependency}))
    return invocations


def local_results(case: dict, engine: str) -> list[str]:
    schema = Schema(case["schema"])
    session = Session(schema.root, engine=engine, encoding=schema.encoding)
    for text in case.get("sigma", []):
        session.add(schema.dependency(text))
    results = []
    for op, params in read_only_invocations(case):
        command = commands.from_wire(op, {"session": "parity", **params})
        outcome = commands.execute(command, session)
        results.append(json.dumps(outcome.result, sort_keys=True))
    return results


def served_results(case: dict, engine: str) -> list[str]:
    async def drive() -> list[str]:
        config = ServeConfig(workers=0)  # inline: the 1-CPU-safe path
        async with ReasoningServer(config) as server:
            host, port = server.address
            async with await AsyncClient.connect(host, port) as client:
                await client.open("parity", case["schema"],
                                  case.get("sigma", []), engine=engine)
                results = []
                for op, params in read_only_invocations(case):
                    raw = await client.request(op, session="parity", **params)
                    results.append(json.dumps(raw, sort_keys=True))
                return results

    return asyncio.run(drive())


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_read_only_commands_agree_local_vs_served(path, engine):
    case = load(path)
    ops = [op for op, _ in read_only_invocations(case)]
    local = local_results(case, engine)
    served = served_results(case, engine)
    assert len(local) == len(served) == len(ops)
    for op, local_json, served_json in zip(ops, local, served):
        assert local_json == served_json, (
            f"{path.stem}/{engine}: {op} diverged\n"
            f"  local:  {local_json}\n  served: {served_json}")


def test_parity_covers_every_read_only_session_command():
    """The suite exercises the full read-only session-scope wire set."""
    covered = {op for case_path in CORPUS
               for op, _ in read_only_invocations(load(case_path))}
    expected = {name for name, cls in commands.REGISTRY.items()
                if cls.spec.wire and cls.spec.read_only
                and cls.spec.scope == "session"}
    assert expected <= covered
