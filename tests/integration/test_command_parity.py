"""Local/served/replicated parity: every read-only command,
byte-identical JSON.

For each corpus problem and each engine (worklist = compiled plan on,
naive = plan off), every read-only wire command is executed against a
local :class:`Session` through ``repro.core.commands.execute``, over
the wire through a live ``ReasoningServer``, and — in the replication
leg — against both a WAL-shipping primary and a caught-up read
replica (with a ``min_seq`` fence at the primary's last acknowledged
position).  All raw JSON results must be byte-identical
(``json.dumps(..., sort_keys=True)``).  This is the guarantee that a
served deployment — scaled out or not — answers exactly what the
library answers.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.core import commands
from repro.core.session import Session
from repro.schema import Schema
from repro.serve import AsyncClient, ReasoningServer, ServeConfig

CORPUS = sorted(
    (Path(__file__).resolve().parents[1] / "corpus").glob("*.json"))
ENGINES = ("worklist", "naive")  # compiled plan on / plan off


def load(path: Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def read_only_invocations(case: dict) -> list[tuple[str, dict]]:
    """Every read-only wire op with corpus-derived params (no session)."""
    queries = [q["dependency"] for q in case.get("queries", [])]
    subjects = [c["x"] for c in case.get("closures", [])]
    invocations: list[tuple[str, dict]] = []
    for dependency in queries:
        invocations.append(("implies", {"dependency": dependency}))
    if queries:
        invocations.append(("implies_batch", {"dependencies": queries}))
    for x in subjects:
        invocations.append(("closure", {"x": x}))
        invocations.append(("basis", {"x": x}))
    invocations.append(("cover", {}))
    invocations.append(("keys", {}))
    invocations.append(("check4nf", {}))
    for dependency in case.get("sigma", []):
        invocations.append(("is_redundant", {"dependency": dependency}))
    return invocations


def local_results(case: dict, engine: str) -> list[str]:
    schema = Schema(case["schema"])
    session = Session(schema.root, engine=engine, encoding=schema.encoding)
    for text in case.get("sigma", []):
        session.add(schema.dependency(text))
    results = []
    for op, params in read_only_invocations(case):
        command = commands.from_wire(op, {"session": "parity", **params})
        outcome = commands.execute(command, session)
        results.append(json.dumps(outcome.result, sort_keys=True))
    return results


def served_results(case: dict, engine: str) -> list[str]:
    async def drive() -> list[str]:
        config = ServeConfig(workers=0)  # inline: the 1-CPU-safe path
        async with ReasoningServer(config) as server:
            host, port = server.address
            async with await AsyncClient.connect(host, port) as client:
                await client.open("parity", case["schema"],
                                  case.get("sigma", []), engine=engine)
                results = []
                for op, params in read_only_invocations(case):
                    raw = await client.request(op, session="parity", **params)
                    results.append(json.dumps(raw, sort_keys=True))
                return results

    return asyncio.run(drive())


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_read_only_commands_agree_local_vs_served(path, engine):
    case = load(path)
    ops = [op for op, _ in read_only_invocations(case)]
    local = local_results(case, engine)
    served = served_results(case, engine)
    assert len(local) == len(served) == len(ops)
    for op, local_json, served_json in zip(ops, local, served):
        assert local_json == served_json, (
            f"{path.stem}/{engine}: {op} diverged\n"
            f"  local:  {local_json}\n  served: {served_json}")


def replicated_results(case: dict, engine: str,
                       tmp_path) -> tuple[list[str], list[str]]:
    """The same invocations against a primary and a caught-up replica.

    Replica reads carry a ``min_seq`` fence at the primary's last
    acknowledged WAL position, so a lagging replica would *fail typed*
    rather than silently answer from stale state — byte-identity below
    is therefore meaningful, not lucky timing.
    """
    async def drive() -> tuple[list[str], list[str]]:
        primary_cfg = ServeConfig(workers=0, idle_ttl=None,
                                  data_dir=str(tmp_path / "primary"))
        async with ReasoningServer(primary_cfg) as primary:
            host, port = primary.address
            follower_cfg = ServeConfig(
                workers=0, replicate_from=f"{host}:{port}",
                replica_id="parity-follower", replicate_poll=0.2,
                data_dir=str(tmp_path / "follower"))
            async with ReasoningServer(follower_cfg) as follower:
                f_host, f_port = follower.address
                async with await AsyncClient.connect(host, port) as up:
                    opened = await up.open("parity", case["schema"],
                                           case.get("sigma", []),
                                           engine=engine)
                last_seq = opened["seq"]
                deadline = asyncio.get_running_loop().time() + 10.0
                while follower.replicator.applied_seq < last_seq:
                    assert asyncio.get_running_loop().time() < deadline, (
                        f"follower stuck at "
                        f"{follower.replicator.applied_seq}/{last_seq}")
                    await asyncio.sleep(0.01)
                primary_out, follower_out = [], []
                async with await AsyncClient.connect(host, port) as up:
                    async with await AsyncClient.connect(f_host,
                                                         f_port) as down:
                        for op, params in read_only_invocations(case):
                            raw = await up.request(op, session="parity",
                                                   **params)
                            primary_out.append(
                                json.dumps(raw, sort_keys=True))
                            raw = await down.request(op, session="parity",
                                                     min_seq=last_seq,
                                                     **params)
                            follower_out.append(
                                json.dumps(raw, sort_keys=True))
                return primary_out, follower_out

    return asyncio.run(drive())


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_read_only_commands_agree_across_the_replication_fleet(
        path, engine, tmp_path):
    case = load(path)
    ops = [op for op, _ in read_only_invocations(case)]
    local = local_results(case, engine)
    primary, follower = replicated_results(case, engine, tmp_path)
    assert len(local) == len(primary) == len(follower) == len(ops)
    for op, local_json, primary_json, follower_json in zip(
            ops, local, primary, follower):
        assert local_json == primary_json, (
            f"{path.stem}/{engine}: {op} diverged on the primary\n"
            f"  local:   {local_json}\n  primary: {primary_json}")
        assert local_json == follower_json, (
            f"{path.stem}/{engine}: {op} diverged on the replica\n"
            f"  local:   {local_json}\n  replica: {follower_json}")


def test_parity_covers_every_read_only_session_command():
    """The suite exercises the full read-only session-scope wire set."""
    covered = {op for case_path in CORPUS
               for op, _ in read_only_invocations(load(case_path))}
    expected = {name for name, cls in commands.REGISTRY.items()
                if cls.spec.wire and cls.spec.read_only
                and cls.spec.scope == "session"}
    assert expected <= covered
