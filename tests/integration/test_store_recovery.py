"""Crash-recovery matrix: SIGKILL-grade deaths at seeded store fault
points must never lose an acknowledged command.

Each case spawns ``repro serve --data-dir`` armed with a ``crash``
fault at one of the store's injection points (``store.append`` pre /
mid / post, ``store.snapshot`` mid, ``store.compact`` pre / mid /
post), drives the same add workload until the process dies with
:data:`~repro.store.wal.CRASH_EXIT_STATUS`, restarts a plain server on
the same directory, and asserts the recovered session answers
implies/closure/basis **byte-identically** to a fault-free replay of
the commands that were actually applied: every acked command always,
plus the in-flight one exactly when the crash landed after its record
(or its triggered compaction) hit the log.

Set ``REPRO_STORE_TEST_DIR`` to park the data directories somewhere a
CI job can upload as an artifact when a case fails.
"""

import contextlib
import json
import os
import subprocess
import sys

import pytest

from repro.serve import Client
from repro.store import inspect_store
from repro.store.wal import CRASH_EXIT_STATUS

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
FD = "Pubcrawl(Visit[λ]) -> Pubcrawl(Person)"
NOT_IMPLIED = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"
#: The workload: open + these adds, in order.  Every add mutates Σ.
ADDS = (MVD, FD, NOT_IMPLIED)

PROBES = [
    "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
    NOT_IMPLIED,
    "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
]
LHS_PROBES = ["Pubcrawl(Person)", "Pubcrawl(Visit[λ])"]


def crash_rule(point, when, after=0):
    return {"op": point, "kind": "crash", "when": when, "every": 1,
            "times": 1, "after": after}


#: name -> (fault rules, extra serve args, in-flight command applied?,
#:          torn tail left on disk?).  ``after=3`` skips the records of
#:          ``open`` and the first two adds, so the append crashes land
#:          on the third add; the compaction cases trip the
#:          ``--store-compact-records 4`` threshold at that same record
#:          (already durable), so the in-flight add survives there.
MATRIX = {
    "append-pre": ([crash_rule("store.append", "pre", after=3)],
                   (), False, False),
    "append-mid": ([crash_rule("store.append", "mid", after=3)],
                   (), False, True),
    "append-post": ([crash_rule("store.append", "post", after=3)],
                    (), True, False),
    "snapshot-mid": ([crash_rule("store.snapshot", "mid")],
                     ("--store-compact-records", "4"), True, False),
    "compact-pre": ([crash_rule("store.compact", "pre")],
                    ("--store-compact-records", "4"), True, False),
    "compact-mid": ([crash_rule("store.compact", "mid")],
                    ("--store-compact-records", "4"), True, False),
    "compact-post": ([crash_rule("store.compact", "post")],
                     ("--store-compact-records", "4"), True, False),
}


@pytest.fixture()
def data_dir(tmp_path, request):
    """Per-test store directory; rooted at ``REPRO_STORE_TEST_DIR`` when
    set so CI can upload crashed stores as failure artifacts."""
    base = os.environ.get("REPRO_STORE_TEST_DIR")
    if base:
        safe = request.node.name.replace("[", "-").replace("]", "")
        path = os.path.join(base, safe)
        os.makedirs(path, exist_ok=True)
        return path
    return str(tmp_path / "store")


@contextlib.contextmanager
def spawned(*extra_args):
    """``repro serve`` as a subprocess; yields ``(proc, host, port)``."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        line = proc.stdout.readline()
        assert line.startswith("serving on "), (line, proc.stderr.read()
                                                if proc.poll() else "")
        host, _, port = line.strip().rpartition(" ")[2].rpartition(":")
        yield proc, host, int(port)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def fingerprint(client):
    """Canonical bytes of everything a recovered session must preserve.

    Epochs are deliberately absent: they are process-lifetime lineage
    ids, fresh after every restart by design.
    """
    data = {
        "implies": [client.implies("pub", probe) for probe in PROBES],
        "closures": {x: client.closure("pub", x) for x in LHS_PROBES},
        "bases": {x: client.basis("pub", x) for x in LHS_PROBES},
    }
    session = client.metrics("pub")["sessions"]["pub"]
    data["sigma"] = session["sigma"]
    data["generation"] = session["generation"]
    return json.dumps(data, sort_keys=True, ensure_ascii=False,
                      separators=(",", ":")).encode("utf-8")


_BASELINES = {}


def baseline(adds):
    """Fault-free, store-free replay of ``adds`` over the wire."""
    if adds not in _BASELINES:
        with spawned() as (proc, host, port):
            with Client.connect(host, port) as client:
                client.open("pub", SCHEMA)
                for dep in adds:
                    client.add("pub", dep)
                _BASELINES[adds] = fingerprint(client)
    return _BASELINES[adds]


def run_until_crash(data_dir, rules, extra):
    """Drive the workload into the armed server until it dies; returns
    the commands that were acknowledged."""
    plan = json.dumps({"seed": 7, "rules": rules})
    acked = []
    with spawned("--data-dir", data_dir, "--fsync", "always",
                 "--fault-plan", plan, *extra) as (proc, host, port):
        with contextlib.suppress(ConnectionError):
            with Client.connect(host, port) as client:
                client.open("pub", SCHEMA)
                for dep in ADDS:
                    client.add("pub", dep)
                    acked.append(dep)
        assert proc.wait(timeout=15) == CRASH_EXIT_STATUS
    assert len(acked) < len(ADDS), "the crash fault never fired"
    return tuple(acked)


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_crash_matrix_recovers_exactly_the_applied_commands(
        name, data_dir):
    rules, extra, inflight_applied, torn = MATRIX[name]
    acked = run_until_crash(data_dir, rules, extra)
    assert acked == ADDS[:2], "crash landed on the wrong command"
    applied = ADDS[:3] if inflight_applied else acked

    # the dead store is inspectable without mutating it
    info = inspect_store(data_dir)
    assert info["initialized"]
    if torn:
        assert info["torn_tail_bytes"] > 0

    with spawned("--data-dir", data_dir) as (proc, host, port):
        with Client.connect(host, port) as client:
            store = client.health()["store"]
            assert store["torn_records"] == (1 if torn else 0)
            assert store["recovered_sessions"] + store["replayed_records"] > 0
            recovered = fingerprint(client)
    assert recovered == baseline(applied)


def test_restart_without_crash_is_byte_identical(data_dir):
    """The zero-fault control: stop cleanly, restart, same answers."""
    with spawned("--data-dir", data_dir) as (proc, host, port):
        with Client.connect(host, port) as client:
            client.open("pub", SCHEMA)
            for dep in ADDS:
                client.add("pub", dep)
            before = fingerprint(client)
    with spawned("--data-dir", data_dir) as (proc, host, port):
        with Client.connect(host, port) as client:
            after = fingerprint(client)
            assert client.health()["store"]["replayed_records"] == 4
    assert before == after == baseline(ADDS)


def test_corrupt_store_refuses_startup(data_dir):
    """Mid-stream corruption is a startup error, not silent divergence."""
    with spawned("--data-dir", data_dir) as (proc, host, port):
        with Client.connect(host, port) as client:
            client.open("pub", SCHEMA)
            for dep in ADDS:
                client.add("pub", dep)
    segment = os.path.join(data_dir, "wal-00000001.log")
    blob = bytearray(open(segment, "rb").read())
    blob[len(blob) // 2] ^= 0x01
    with open(segment, "wb") as handle:
        handle.write(blob)

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--data-dir", data_dir],
        env=env, capture_output=True, text=True, timeout=60)
    assert proc.returncode != 0
    assert "corrupt" in proc.stderr.lower() or "checksum" in proc.stderr.lower()
