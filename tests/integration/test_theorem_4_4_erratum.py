"""Integration: the Theorem 4.4 erratum found by this reproduction (E11).

Theorem 4.4 of the paper claims ``r ⊨ X ↠ Y`` iff
``r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)``.  This module pins down the minimal
counterexample to the "if" direction discovered by the property suite and
verifies the corrected statement (adding the mixed-meet FD conjunct) from
every angle.
"""

import pytest

from repro.attributes import complement, meet, parse_attribute as p, parse_subattribute
from repro.dependencies import (
    FD,
    MVD,
    lossless_binary_decomposition,
    satisfies_fd,
    satisfies_mvd,
    satisfies_mvd_via_join,
)


@pytest.fixture(scope="module")
def counterexample():
    root = p("L[A]")
    x = parse_subattribute("λ", root)
    y = parse_subattribute("L[λ]", root)
    instance = frozenset({(), (3,)})  # the empty list and [3]
    return root, x, y, instance


class TestTheCounterexample:
    def test_instance_is_lossless_join_of_projections(self, counterexample):
        root, x, y, instance = counterexample
        assert lossless_binary_decomposition(root, instance, MVD(x, y))

    def test_but_the_mvd_is_violated(self, counterexample):
        # Definition 4.1 needs a tuple with length 0 and content [3]:
        # no such value exists in dom(L[A]).
        root, x, y, instance = counterexample
        assert not satisfies_mvd(root, instance, MVD(x, y))

    def test_mixed_meet_fd_is_the_missing_conjunct(self, counterexample):
        root, x, y, instance = counterexample
        overlap = meet(root, y, complement(root, y))
        assert overlap == y  # Y ⊓ Y^C = L[λ]: genuinely above λ
        assert not satisfies_fd(root, instance, FD(x, overlap))

    def test_corrected_oracle_gets_it_right(self, counterexample):
        root, x, y, instance = counterexample
        assert not satisfies_mvd_via_join(root, instance, MVD(x, y))

    def test_equal_lengths_restore_the_equivalence(self, counterexample):
        # With the mixed-meet FD satisfied (all lists the same length),
        # losslessness and the MVD agree again.
        root, x, y, _ = counterexample
        same_length = frozenset({(3,), (4,)})
        assert satisfies_mvd(root, same_length, MVD(x, y))
        assert satisfies_mvd_via_join(root, same_length, MVD(x, y))
        assert lossless_binary_decomposition(root, same_length, MVD(x, y))


class TestRelationalCaseUnaffected:
    def test_flat_records_keep_fagins_theorem(self):
        # In the RDM Y ⊓ Y^C = λ always, so the raw statement is exact.
        root = p("R(A, B, C)")
        x = parse_subattribute("R(A)", root)
        y = parse_subattribute("R(B)", root)
        mvd = MVD(x, y)
        overlap = meet(root, y, complement(root, y))
        assert overlap == parse_subattribute("λ", root)
        incomplete = {(1, "b1", "c1"), (1, "b2", "c2")}
        complete = incomplete | {(1, "b1", "c2"), (1, "b2", "c1")}
        for instance in (incomplete, complete):
            assert satisfies_mvd(root, instance, mvd) == (
                lossless_binary_decomposition(root, instance, mvd)
            )


class TestConsistencyWithTheAlgorithm:
    def test_algorithm_agrees_with_definition_not_raw_theorem(self, counterexample):
        # Σ = {λ ↠ L[λ]} forces the FD λ → L[λ] via the mixed meet rule;
        # the witness semantics (Definition 4.1 checkers) and Algorithm
        # 5.1 are mutually consistent here — the erratum concerns only
        # the lossless-join characterisation.
        from repro.core import implies
        from repro.dependencies import DependencySet

        root, x, y, _ = counterexample
        sigma = DependencySet(root, [MVD(x, y)])
        assert implies(sigma, FD(x, y))
