#!/usr/bin/env python3
"""Automated schema design: equivalence, redundancy, normalisation.

The paper motivates the membership algorithm as "a significant step
towards automated database schema design" (§1.3): deciding equivalence of
dependency sets and eliminating redundant dependencies.  This example
plays a small design session for an XML-ish course-catalogue store —
ordered data everywhere (lecture sequences, reading lists) — and drives
every design decision through the algorithm.

Run:  python examples/schema_design.py
"""

from repro import Schema
from repro.core import is_redundant

# ---------------------------------------------------------------------------
# 1. The document schema: a course with ordered lectures and readings
# ---------------------------------------------------------------------------
schema = Schema(
    "Course(Code, Title, Lectures[Lecture(Topic, Room)], Readings[Ref])"
)
print("schema:", schema)
print()

# ---------------------------------------------------------------------------
# 2. Two analysts wrote down "the same" constraints differently
# ---------------------------------------------------------------------------
analyst_a = schema.dependencies(
    "Course(Code) -> Course(Title)",
    "Course(Code) -> Course(Lectures[Lecture(Topic, Room)])",
    "Course(Code) ->> Course(Readings[Ref])",
)
analyst_b = schema.dependencies(
    "Course(Code) -> Course(Title, Lectures[Lecture(Topic)])",
    "Course(Code) -> Course(Lectures[Lecture(Room)])",
    # B stated the complement side of the same independence:
    "Course(Code) ->> Course(Title, Lectures[Lecture(Topic, Room)])",
)
print("analyst A:")
print(analyst_a.display())
print("analyst B:")
print(analyst_b.display())
print()
print("equivalent?", schema.equivalent(analyst_a, analyst_b))
print()

# ---------------------------------------------------------------------------
# 3. Redundancy elimination on the merged set
# ---------------------------------------------------------------------------
merged = analyst_a.union(analyst_b)
print(f"merged set: {len(merged)} dependencies")
for dependency in merged:
    flag = "redundant" if is_redundant(merged, dependency) else "needed   "
    print(f"  {flag}  {dependency.display(schema.root)}")
cover = schema.minimal_cover(merged)
print(f"minimal cover: {len(cover)} dependencies")
print(cover.display())
print()

# ---------------------------------------------------------------------------
# 4. Subtle consequences the algorithm finds for free
# ---------------------------------------------------------------------------
consequences = [
    # The code fixes the number of lectures (through the FD)...
    "Course(Code) -> Course(Lectures[λ])",
    # ...and the number of readings (mixed meet on the MVD)!
    "Course(Code) -> Course(Readings[λ])",
    # But never the reading references themselves:
    "Course(Code) -> Course(Readings[Ref])",
]
for text in consequences:
    verdict = "implied" if schema.implies(cover, text) else "not implied"
    print(f"  {verdict:12}  {text}")
print()

# ---------------------------------------------------------------------------
# 5. Normalise
# ---------------------------------------------------------------------------
print("candidate keys:")
for key in schema.candidate_keys(cover):
    print("   ", schema.show(key))
print("in 4NF?", schema.is_in_4nf(cover))
decomposition = schema.decompose(cover)
print(decomposition.describe())
print()

# ---------------------------------------------------------------------------
# 6. Verify the decomposition on data
# ---------------------------------------------------------------------------
from repro.values import generalised_join, project_instance  # noqa: E402
from repro.attributes import join as attr_join  # noqa: E402

r = schema.instance(
    [
        ("DB101", "Databases", (("Models", "R1"), ("SQL", "R2")), ("Codd70",)),
        ("DB101", "Databases", (("Models", "R1"), ("SQL", "R2")), ("Fagin77",)),
        ("TH200", "Theory", (("Logic", "R3"),), ("Armstrong74",)),
    ]
)
print("instance satisfies the cover?", schema.satisfies_all(r, cover))
components = list(decomposition.components)
current_attr, current = components[0], project_instance(schema.root, components[0], r)
for component in components[1:]:
    projection = project_instance(schema.root, component, r)
    current = generalised_join(schema.root, current_attr, component, current, projection)
    current_attr = attr_join(schema.root, current_attr, component)
print("re-joined equals the original?", current == r)
