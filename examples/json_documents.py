#!/usr/bin/env python3
"""Semi-structured documents: JSON in, dependency reasoning out.

The paper motivates list types with XML and semi-structured data (§1.3).
This example plays the full tooling loop on a playlist service whose
documents arrive as JSON: decode them against a nested schema, check
integrity constraints, mine what else must hold, and persist the whole
reasoning session as a problem file that the test suite (or a colleague)
can replay.

Run:  python examples/json_documents.py
"""

import json
import tempfile
from pathlib import Path

from repro import Schema
from repro.io import Problem, dump_problem, instance_from_json, load_problem

# ---------------------------------------------------------------------------
# 1. The document schema: a playlist is an ORDERED list of track entries
# ---------------------------------------------------------------------------
schema = Schema("Playlist(User, Name, Tracks[Track(Song, Artist)])")
print("schema:", schema)
print()

# ---------------------------------------------------------------------------
# 2. Documents, as they arrive over the wire
# ---------------------------------------------------------------------------
documents = json.loads("""
[
  {"User": "ana", "Name": "focus",
   "Tracks": [{"Song": "Weightless", "Artist": "Marconi Union"},
              {"Song": "Avril 14th", "Artist": "Aphex Twin"}]},
  {"User": "ana", "Name": "gym",
   "Tracks": [{"Song": "Escape Velocity", "Artist": "The Chemical Brothers"}]},
  {"User": "bo", "Name": "focus",
   "Tracks": [{"Song": "Weightless", "Artist": "Marconi Union"},
              {"Song": "Avril 14th", "Artist": "Aphex Twin"}]}
]
""")
r = instance_from_json(schema.root, documents)
print(f"decoded {len(r)} playlist documents")
print()

# ---------------------------------------------------------------------------
# 3. Integrity constraints and what the data says
# ---------------------------------------------------------------------------
sigma = schema.dependencies(
    # A (user, name) pair identifies the playlist content.
    "Playlist(User, Name) -> Playlist(Tracks[Track(Song, Artist)])",
    # A song title pins down its artist, inside every list position.
    "Playlist(Tracks[Track(Song)]) -> Playlist(Tracks[Track(Artist)])",
)
print("Σ:")
print(sigma.display())
print("documents satisfy Σ?", schema.satisfies_all(r, sigma))
print()

queries = [
    # Key-ish consequences:
    "Playlist(User, Name) -> Playlist(Tracks[λ])",       # length fixed
    "Playlist(User, Name) -> Playlist(Tracks[Track(Artist)])",
    # The song sequence alone does NOT identify the playlist owner:
    "Playlist(Tracks[Track(Song)]) -> Playlist(User)",
]
for text in queries:
    verdict = "implied" if schema.implies(sigma, text) else "not implied"
    print(f"  {verdict:12}  {text}")
print()

print("candidate keys:")
for key in schema.candidate_keys(sigma):
    print("   ", schema.show(key))
print()

# ---------------------------------------------------------------------------
# 4. Persist and replay the session
# ---------------------------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "playlists.json"
    dump_problem(path, Problem(schema, sigma, r))
    print(f"problem file written ({path.stat().st_size} bytes); reloading…")

    replayed = load_problem(path)
    assert replayed.schema.root == schema.root
    assert replayed.instance == r
    print(
        "replayed verdict identical:",
        replayed.schema.satisfies_all(replayed.instance, replayed.sigma)
        == schema.satisfies_all(r, sigma),
    )
print()
print("The same checks are available from the shell:")
print('  python -m repro implies --schema "Playlist(...)" -d "..." "QUERY"')
