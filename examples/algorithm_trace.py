#!/usr/bin/env python3
"""Example 5.1 of the paper, replayed step by step (Figures 3 and 4).

Runs Algorithm 5.1 on the exact input of the paper's Example 5.1 and
prints every intermediate state in the paper's own layout, followed by a
few membership queries against the final dependency basis.

Run:  python examples/algorithm_trace.py
"""

from repro import Schema
from repro.workloads import example_5_1

fixture = example_5_1()
schema = Schema(fixture.root)

print("N =", schema.show(schema.root))
print("Σ:")
print(fixture.sigma.display())
print("X =", fixture.x_text)
print()

# ---------------------------------------------------------------------------
# The full trace (Figure 3 = the initialisation block; Figure 4 = final)
# ---------------------------------------------------------------------------
trace = schema.trace(fixture.sigma, fixture.x())
print(trace.render())
print()

# ---------------------------------------------------------------------------
# Membership queries against the computed dependency basis
# ---------------------------------------------------------------------------
result = schema.analyse(fixture.sigma, fixture.x())
print("membership queries for X =", fixture.x_text)
queries = [
    ("FD ", "L1(L7(F, L8[L9(L10[H])])) -> L1(L2[L3[L4(A)]])"),
    ("FD ", "L1(L7(F, L8[L9(L10[H])])) -> L1(L2[L3[L4(B)]])"),
    ("MVD", "L1(L7(F, L8[L9(L10[H])])) ->> L1(L5[L6(D)])"),
    ("MVD", "L1(L7(F, L8[L9(L10[H])])) ->> L1(L2[L3[L4(B)]], L5[L6(D)])"),
    ("MVD", "L1(L7(F, L8[L9(L10[H])])) ->> L1(L2[L3[L4(C)]])"),
]
sigma = fixture.sigma
for kind, text in queries:
    verdict = "implied" if schema.implies(sigma, text) else "not implied"
    print(f"  [{kind}] {verdict:12}  {text}")
print()
print(f"(the algorithm stabilised after {result.passes} passes; the paper")
print(" reports the same states: one effective step in pass 1, two in")
print(" pass 2, and a quiet pass 3)")
