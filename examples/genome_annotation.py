#!/usr/bin/env python3
"""Genomic sequence database design with list dependencies.

The paper motivates list types with genomic sequence databases (§1.3,
refs [17, 39]): order is essential — an mRNA transcript is an ordered
list of exons, a protein an ordered list of domains.  This example models
a gene-annotation store and uses the membership algorithm to answer real
design questions:

* Splicing determines structure: the transcript (ordered exon list)
  fixes how many coding segments there are and the protein length.
* Expression measurements vary independently of annotation provenance —
  an MVD — which lets the fact table be decomposed losslessly.

Run:  python examples/genome_annotation.py
"""

from repro import Schema
from repro.inference import derive_closure, explain

# ---------------------------------------------------------------------------
# 1. The annotation schema
# ---------------------------------------------------------------------------
# A gene carries an accession, an ordered exon list (each with start/end
# coordinates), an ordered expression profile (one tissue/level reading
# per assay position), and a curation record (source and confidence).
schema = Schema(
    "Gene(Acc, Exons[Exon(Start, End)], Expr[Meas(Tissue, Level)], Curation(Src, Conf))"
)
print("schema:", schema)
print(f"basis size |N| = {schema.encoding.size}")
print()

# ---------------------------------------------------------------------------
# 2. Domain knowledge as dependencies
# ---------------------------------------------------------------------------
sigma = schema.dependencies(
    # The accession identifies the splice structure (the full exon list).
    "Gene(Acc) -> Gene(Exons[Exon(Start, End)])",
    # Given the accession, the measured LEVELS are exchangeable
    # independently of everything else (replicate runs permute levels
    # while the tissue panel layout stays put).
    "Gene(Acc) ->> Gene(Expr[Meas(Level)])",
    # Curation source determines its confidence calibration.
    "Gene(Curation(Src)) -> Gene(Curation(Conf))",
)
print("Σ:")
print(sigma.display())
print()

# ---------------------------------------------------------------------------
# 3. Design questions answered by the membership algorithm
# ---------------------------------------------------------------------------
questions = [
    # Does the accession fix the exon COUNT?  (projection of the FD)
    "Gene(Acc) -> Gene(Exons[λ])",
    # ... and the number of expression measurements?  YES: the MVD splits
    # the Meas record inside the list, so the shared list length
    # Expr[λ] = Y ⊓ Y^C is functionally fixed — the mixed meet rule,
    # impossible in the relational model:
    "Gene(Acc) -> Gene(Expr[λ])",
    # but not the levels themselves:
    "Gene(Acc) -> Gene(Expr[Meas(Level)])",
    # Complementation: the tissue layout (everything but the levels) is
    # exchangeable too:
    "Gene(Acc) ->> Gene(Expr[Meas(Tissue)], Curation(Src, Conf))",
    # Start coordinates alone are exchangeable only with their ends:
    "Gene(Acc) ->> Gene(Exons[Exon(Start)])",
]
for text in questions:
    verdict = "yes" if schema.implies(sigma, text) else "no "
    print(f"  {verdict}  {text}")
print()

# A full derivation for the expression-count FD, as a proof tree:
target = schema.dependency("Gene(Acc) -> Gene(Expr[λ])")
derivation = derive_closure(sigma, target=target)
print("why does the accession fix the number of measurements?")
print(explain(derivation, target))
print()

# ---------------------------------------------------------------------------
# 4. Keys and normalisation
# ---------------------------------------------------------------------------
print("candidate keys:")
for key in schema.candidate_keys(sigma):
    print("   ", schema.show(key))
print()
print("in 4NF?", schema.is_in_4nf(sigma))
decomposition = schema.decompose(sigma)
print(decomposition.describe())
print()

# ---------------------------------------------------------------------------
# 5. A worked instance: satisfaction and the witness
# ---------------------------------------------------------------------------
r = schema.instance(
    [
        ("BRCA1", ((100, 200), (300, 420)),
         (("breast", 7), ("ovary", 3)), ("Ensembl", 5)),
        ("BRCA1", ((100, 200), (300, 420)),
         (("breast", 2), ("ovary", 9)), ("Ensembl", 5)),
        ("TP53", ((10, 90),), (("skin", 1),), ("Ensembl", 5)),
    ]
)
print("annotation fact table satisfies Σ?", schema.satisfies_all(r, sigma))

# The Section 4.2 witness: the most general Σ-satisfying instance for a
# given left-hand side — useful as synthetic test data that provably
# exercises every non-implied dependency.
witness = schema.witness(sigma, "Gene(Acc)")
print(
    f"witness instance for Gene(Acc): {len(witness.instance)} tuples over "
    f"{len(witness.free_blocks)} independent blocks"
)
print(
    "witness violates 'Gene(Acc) -> Gene(Expr[Meas(Level)])':",
    witness.violates(schema.dependency("Gene(Acc) -> Gene(Expr[Meas(Level)])")),
)
