#!/usr/bin/env python3
"""XML in anger: a product-catalogue feed checked and normalised.

XML is the paper's flagship motivation for list types — child elements
are ordered.  This example ingests a small catalogue feed with
``repro.xmlfront``, checks editorial constraints, finds what the
constraints *imply* about the feed, and exports the decomposed views
back to XML.

Run:  python examples/xml_catalog.py
"""

import xml.etree.ElementTree as ET

from repro import Schema
from repro.values import project_instance
from repro.xmlfront import instance_from_xml, instance_to_xml, value_to_xml

# ---------------------------------------------------------------------------
# 1. The document schema: a catalogue page
# ---------------------------------------------------------------------------
# A page shows a product with an ORDERED gallery (image + caption per
# slot) and an ordered list of review snippets.
schema = Schema(
    "Page(Sku, Title, Gallery[Slot(Image, Caption)], Reviews[Quote])"
)
print("schema:", schema)
print()

# ---------------------------------------------------------------------------
# 2. The feed, as XML documents
# ---------------------------------------------------------------------------
FEED = """
<feed>
  <Page>
    <Sku>KB-10</Sku><Title>Keyboard</Title>
    <Gallery>
      <Slot><Image>kb-front.png</Image><Caption>Front</Caption></Slot>
      <Slot><Image>kb-side.png</Image><Caption>Side</Caption></Slot>
    </Gallery>
    <Reviews><Quote>clacky!</Quote></Reviews>
  </Page>
  <Page>
    <Sku>KB-10</Sku><Title>Keyboard</Title>
    <Gallery>
      <Slot><Image>kb-front.png</Image><Caption>Front</Caption></Slot>
      <Slot><Image>kb-side.png</Image><Caption>Side</Caption></Slot>
    </Gallery>
    <Reviews><Quote>my cat loves it</Quote></Reviews>
  </Page>
  <Page>
    <Sku>MS-7</Sku><Title>Mouse</Title>
    <Gallery>
      <Slot><Image>ms-top.png</Image><Caption>Top</Caption></Slot>
    </Gallery>
    <Reviews/>
  </Page>
</feed>
"""
documents = list(ET.fromstring(FEED))
r = instance_from_xml(schema.root, documents)
print(f"ingested {len(r)} page documents from the feed")
print()

# ---------------------------------------------------------------------------
# 3. Editorial constraints
# ---------------------------------------------------------------------------
sigma = schema.dependencies(
    # A SKU owns its title and its gallery (images AND captions, in order).
    "Page(Sku) -> Page(Title, Gallery[Slot(Image, Caption)])",
    # Review snippets vary independently of everything else per SKU.
    "Page(Sku) ->> Page(Reviews[Quote])",
)
print("feed satisfies the constraints?", schema.satisfies_all(r, sigma))
print()

queries = [
    # The SKU fixes how many gallery slots a page has…
    "Page(Sku) -> Page(Gallery[λ])",
    # …but NOT the review count: the MVD exchanges WHOLE review lists,
    # so no length is shared between the side and its complement (the
    # mixed meet rule only fires when an MVD splits a list's inside):
    "Page(Sku) -> Page(Reviews[λ])",
    # determined parts are trivially exchangeable (FD ⊢ MVD): the SKU
    # fixes the captions outright, so this MVD is implied:
    "Page(Sku) ->> Page(Gallery[Slot(Caption)])",
]
for text in queries:
    verdict = "implied" if schema.implies(sigma, text) else "not implied"
    print(f"  {verdict:12}  {text}")
print()

# ---------------------------------------------------------------------------
# 4. Normalise and export the views back to XML
# ---------------------------------------------------------------------------
decomposition = schema.decompose(sigma)
print(decomposition.describe())
print()
for component in decomposition.components:
    view = project_instance(schema.root, component, r)
    exported = instance_to_xml(component, view, wrapper="view")
    text = ET.tostring(exported, encoding="unicode")
    print(f"view {schema.show(component)}: {len(view)} rows, "
          f"{len(text)} bytes of XML")
print()

# Round-trip sanity on one document:
sample = next(iter(r))
again = value_to_xml(schema.root, sample)
assert instance_from_xml(schema.root, [again]) == frozenset({sample})
print("XML round-trip verified on a sample document")
