#!/usr/bin/env python3
"""Quickstart: the paper's Pubcrawl example, end to end.

Walks through the complete pipeline on Example 4.2 of Hartmann & Link
(ENTCS 91, 2004): define a nested schema with a list type, check which
dependencies a concrete instance satisfies, let the membership algorithm
*derive* consequences (including the mixed-meet FD that has no relational
counterpart), and decompose the schema losslessly.

Run:  python examples/quickstart.py
"""

from repro import Schema
from repro.values import format_instance

# ---------------------------------------------------------------------------
# 1. A schema with base, record and list types
# ---------------------------------------------------------------------------
schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
print("schema:", schema)
print()

# ---------------------------------------------------------------------------
# 2. The paper's snapshot instance (Example 4.2)
# ---------------------------------------------------------------------------
r = schema.instance(
    [
        ("Sven", (("Lübzer", "Deanos"), ("Kindl", "Highflyers"))),
        ("Sven", (("Kindl", "Deanos"), ("Lübzer", "Highflyers"))),
        ("Klaus-Dieter", (("Guiness", "Irish Pub"), ("Speights", "3Bar"),
                          ("Guiness", "Irish Pub"))),
        ("Klaus-Dieter", (("Kölsch", "Irish Pub"), ("Bönnsch", "3Bar"),
                          ("Guiness", "Irish Pub"))),
        ("Klaus-Dieter", (("Guiness", "Highflyers"), ("Speights", "Deanos"),
                          ("Guiness", "3Bar"))),
        ("Klaus-Dieter", (("Kölsch", "Highflyers"), ("Bönnsch", "Deanos"),
                          ("Guiness", "3Bar"))),
        ("Sebastian", ()),  # an empty pub crawl is a legal list value
    ]
)
print("instance r:")
print(format_instance(schema.root, r))
print()

# ---------------------------------------------------------------------------
# 3. Which dependencies does r satisfy?  (the paper's stated verdicts)
# ---------------------------------------------------------------------------
checks = [
    "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",    # fails
    "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Beer)])",   # fails
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",   # holds
    "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",             # holds
]
for text in checks:
    verdict = "holds" if schema.satisfies(r, text) else "FAILS"
    print(f"  {verdict:5}  {text}")
print()

# ---------------------------------------------------------------------------
# 4. The membership problem: what FOLLOWS from the MVD alone?
# ---------------------------------------------------------------------------
sigma = schema.dependencies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
print("Σ =", sigma.display())
print()

queries = [
    # complementation: pubs exchangeable ⇒ beers exchangeable
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
    # the mixed meet rule: the person fixes HOW MANY bars are visited —
    # an FD derived from an MVD, impossible in the relational model
    "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    # but not which pubs:
    "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
]
for text in queries:
    verdict = "implied" if schema.implies(sigma, text) else "not implied"
    print(f"  {verdict:12}  {text}")
print()

closure = schema.closure(sigma, "Pubcrawl(Person)")
print("closure  Person+ =", schema.show(closure))
print("dependency basis DepB(Person):")
for member in schema.dependency_basis(sigma, "Pubcrawl(Person)"):
    print("   ", schema.show(member))
print()

# ---------------------------------------------------------------------------
# 5. Schema design: 4NF check and lossless decomposition (Example 4.5)
# ---------------------------------------------------------------------------
print("in 4NF?", schema.is_in_4nf(sigma))
decomposition = schema.decompose(sigma)
print(decomposition.describe())
print()
print("Each person's beer lists and pub lists now live in separate,")
print("redundancy-free relations; Theorem 4.4 guarantees the original")
print("instance is exactly the generalised join of the two projections.")
