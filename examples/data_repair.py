#!/usr/bin/env python3
"""Data quality tooling: redundancy audit and the MVD chase.

The paper's closing motivation is eliminating redundancy; this example
runs the two data-facing tools built on the membership algorithm against
the paper's own Example 4.2 snapshot:

* the **redundancy audit** finds every stored value that is already
  determined by the rest of the instance (and would desynchronise on a
  sloppy update), and
* the **chase** repairs an incomplete instance by generating exactly the
  exchange tuples the MVD semantics demands — and *refuses*, with the
  culprit FD, when no repair exists (the mixed-meet length conflicts).

Run:  python examples/data_repair.py
"""

from repro import Schema, chase
from repro.chase import ChaseFailure
from repro.normalization import redundancy_report
from repro.values import format_instance, format_value
from repro.workloads import pubcrawl

scenario = pubcrawl()
schema = Schema(scenario.root)
sigma = schema.dependencies(scenario.holding_mvd_text)

print("schema:", schema)
print("Σ:", sigma.display())
print()

# ---------------------------------------------------------------------------
# 1. Audit: which stored values are redundant?
# ---------------------------------------------------------------------------
print("redundancy audit of the Example 4.2 snapshot:")
report = redundancy_report(sigma, scenario.instance, encoding=schema.encoding)
for basis, count in sorted(report.items(), key=lambda kv: -kv[1]):
    print(f"  {count} forced occurrences of  π_{schema.show(basis)}")
print()
print("Every tuple of a person repeats that person's visit COUNT — the")
print("list length is functionally fixed by the MVD (mixed meet rule),")
print("so it is stored once per combination tuple instead of once per")
print("person.  The 4NF decomposition stores each list exactly once:")
decomposition = schema.decompose(sigma)
for component in decomposition.components:
    from repro.values import project_instance

    projected = project_instance(schema.root, component, scenario.instance)
    component_report = redundancy_report(
        sigma, scenario.instance, encoding=schema.encoding
    )
    print(f"  {schema.show(component)}: {len(projected)} tuples")
print()

# ---------------------------------------------------------------------------
# 2. Repair: an incomplete feed, chased back to consistency
# ---------------------------------------------------------------------------
print("simulating a lossy feed: one of Klaus-Dieter's combination tuples")
print("was dropped in transit…")
partial = set(scenario.instance)
dropped = (
    "Klaus-Dieter",
    (("Kölsch", "Highflyers"), ("Bönnsch", "Deanos"), ("Guiness", "3Bar")),
)
partial.remove(dropped)
print("instance satisfies Σ after the drop?",
      schema.satisfies_all(partial, sigma))

result = chase(schema.root, partial, sigma)
print(f"chase added {len(result.added)} tuple(s) in {result.rounds} round(s):")
for value in result.added:
    print("  +", format_value(schema.root, value))
print("repaired instance equals the original snapshot?",
      result.instance == scenario.instance)
print()

# ---------------------------------------------------------------------------
# 3. When no repair exists: the mixed-meet boundary
# ---------------------------------------------------------------------------
print("a feed mixing visit-list lengths for one person cannot be repaired:")
broken = set(partial)
broken.add(("Klaus-Dieter", (("Tui", "Deanos"),)))  # wrong length!
try:
    chase(schema.root, broken, sigma)
except ChaseFailure as failure:
    print("  chase refused:", failure)
    print("  culprit FD:   ", failure.dependency.display(schema.root))
print()
print("(the exchange tuple would need two different lengths at once —")
print(" exactly the boundary information the mixed meet rule tracks)")
